//! System-state persistence: the catalog, index definitions, and view
//! definitions are stored as one reserved record in the same
//! WAL-protected heap as the objects, so a cold restart recovers the
//! schema exactly like it recovers data.
//!
//! Method *bodies* are native Rust closures and cannot be persisted —
//! the application re-registers them at startup (as with native UDFs in
//! any database); their catalog signatures and late-binding resolution
//! survive.

use crate::database::Database;
use crate::runtime::Runtime;
use crate::sysattr;
use orion_index::{IndexDef, IndexInstance, IndexKind};
use orion_schema::Catalog;
use orion_types::codec::ObjectRecord;
use orion_types::{ClassId, DbError, DbResult, Oid, Value};

use bytes::{Buf, BufMut};

/// The class id reserved for the system-state record (never a user
/// class: the catalog refuses to allocate it).
pub const SYSTEM_CLASS: ClassId = ClassId(u16::MAX - 1);

/// The OID under which the system-state record is stored.
pub const SYSTEM_OID: Oid = Oid::from_raw(((SYSTEM_CLASS.0 as u64) << 48) | 1);

const MAGIC: u32 = 0x0D10_5757; // "orion system state"

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> DbResult<String> {
    if buf.remaining() < 4 {
        return Err(DbError::Storage("truncated system snapshot".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DbError::Storage("truncated system snapshot string".into()));
    }
    let s = String::from_utf8(buf[..len].to_vec())
        .map_err(|_| DbError::Storage("invalid UTF-8 in system snapshot".into()))?;
    buf.advance(len);
    Ok(s)
}

/// The decoded system state.
pub(crate) struct SystemState {
    pub catalog: Catalog,
    pub index_defs: Vec<IndexDef>,
    pub next_index_id: u32,
    pub views: Vec<(String, String)>,
}

fn encode_state(
    catalog: &Catalog,
    index_defs: &[IndexDef],
    next_index_id: u32,
    views: &[(String, String)],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(2048);
    out.put_u32_le(MAGIC);
    let cat = catalog.snapshot();
    out.put_u32_le(cat.len() as u32);
    out.put_slice(&cat);
    out.put_u32_le(next_index_id);
    out.put_u32_le(index_defs.len() as u32);
    for def in index_defs {
        out.put_u32_le(def.id);
        put_str(&mut out, &def.name);
        out.put_u8(match def.kind {
            IndexKind::SingleClass => 0,
            IndexKind::ClassHierarchy => 1,
            IndexKind::Nested => 2,
        });
        out.put_u16_le(def.target.0);
        out.put_u16_le(def.path.len() as u16);
        for p in &def.path {
            out.put_u32_le(*p);
        }
    }
    out.put_u32_le(views.len() as u32);
    for (name, body) in views {
        put_str(&mut out, name);
        put_str(&mut out, body);
    }
    out
}

fn decode_state(mut bytes: &[u8]) -> DbResult<SystemState> {
    let buf = &mut bytes;
    if buf.remaining() < 8 {
        return Err(DbError::Storage("truncated system snapshot header".into()));
    }
    if buf.get_u32_le() != MAGIC {
        return Err(DbError::Storage("bad system snapshot magic".into()));
    }
    let cat_len = buf.get_u32_le() as usize;
    if buf.remaining() < cat_len {
        return Err(DbError::Storage("truncated catalog in system snapshot".into()));
    }
    let catalog = Catalog::restore(&buf[..cat_len])?;
    buf.advance(cat_len);
    if buf.remaining() < 8 {
        return Err(DbError::Storage("truncated index header".into()));
    }
    let next_index_id = buf.get_u32_le();
    let n_indexes = buf.get_u32_le() as usize;
    let mut index_defs = Vec::with_capacity(n_indexes);
    for _ in 0..n_indexes {
        if buf.remaining() < 4 {
            return Err(DbError::Storage("truncated index def".into()));
        }
        let id = buf.get_u32_le();
        let name = get_str(buf)?;
        let kind = match buf.get_u8() {
            0 => IndexKind::SingleClass,
            1 => IndexKind::ClassHierarchy,
            2 => IndexKind::Nested,
            other => return Err(DbError::Storage(format!("bad index kind {other}"))),
        };
        let target = ClassId(buf.get_u16_le());
        let path_len = buf.get_u16_le() as usize;
        let mut path = Vec::with_capacity(path_len);
        for _ in 0..path_len {
            path.push(buf.get_u32_le());
        }
        index_defs.push(IndexDef { id, name, kind, target, path });
    }
    if buf.remaining() < 4 {
        return Err(DbError::Storage("truncated views header".into()));
    }
    let n_views = buf.get_u32_le() as usize;
    let mut views = Vec::with_capacity(n_views);
    for _ in 0..n_views {
        let name = get_str(buf)?;
        let body = get_str(buf)?;
        views.push((name, body));
    }
    Ok(SystemState { catalog, index_defs, next_index_id, views })
}

impl Database {
    /// Persist the catalog, index definitions, and views as the system
    /// record. Called by DDL paths after they commit their change.
    pub(crate) fn persist_system_state(&self) -> DbResult<()> {
        let bytes = {
            let catalog = self.catalog.read();
            let rt = self.rt_read();
            let defs: Vec<IndexDef> =
                rt.indexes.read().iter().map(|i| i.def.clone()).collect();
            let views: Vec<(String, String)> = {
                let v = self.views.read();
                let mut pairs: Vec<_> =
                    v.iter().map(|(k, b)| (k.clone(), b.clone())).collect();
                pairs.sort();
                pairs
            };
            encode_state(
                &catalog,
                &defs,
                rt.next_index_id.load(std::sync::atomic::Ordering::Relaxed),
                &views,
            )
        };
        let record = ObjectRecord::new(
            SYSTEM_OID,
            0,
            vec![(sysattr::ATTR_SYSTEM_SNAPSHOT, Value::Blob(bytes))],
        );
        let tx = self.begin();
        let result = (|| -> DbResult<()> {
            let rt = self.rt_read();
            // The rid slot's mutex spans read-modify-write, so two
            // concurrent DDL persists serialize on it rather than both
            // inserting a fresh system record.
            let mut rid_slot = rt.system_rid.lock();
            match *rid_slot {
                Some(rid) => {
                    let new_rid = self.engine.update(tx.storage, rid, &record.encode())?;
                    *rid_slot = Some(new_rid);
                }
                None => {
                    let rid = self.engine.insert(tx.storage, &record.encode(), None)?;
                    *rid_slot = Some(rid);
                }
            }
            Ok(())
        })();
        match result {
            Ok(()) => self.commit(tx),
            Err(e) => {
                self.rollback(tx)?;
                Err(e)
            }
        }
    }

    /// Decode a scanned system record (rebuild path).
    pub(crate) fn decode_system_record(record: &ObjectRecord) -> DbResult<SystemState> {
        let blob = record
            .attrs
            .iter()
            .find_map(|(_, v)| match v {
                Value::Blob(b) => Some(b),
                _ => None,
            })
            .ok_or_else(|| DbError::Storage("system record holds no blob".into()))?;
        decode_state(blob)
    }

    /// Simulate a full process restart: volatile state *and* the
    /// in-memory catalog/views/indexes are wiped, then recovered from
    /// the WAL, pages, and the persisted system record. Method bodies
    /// must be re-registered by the caller afterwards.
    pub fn simulate_cold_restart(&self) -> DbResult<()> {
        {
            let mut catalog = self.catalog.write();
            let rt = self.rt_write();
            self.engine.crash();
            self.locks.reset();
            *catalog = Catalog::new();
            self.views.write().clear();
            *self.methods.write() = crate::methods::MethodRegistry::new();
            rt.indexes.write().clear();
            rt.next_index_id.store(1, std::sync::atomic::Ordering::Relaxed);
            *rt.system_rid.lock() = None;
            self.engine.recover()?;
            self.rebuild_runtime(&mut catalog, &rt)?;
        }
        // Prepared transactions survive the restart as in-doubt; their
        // exclusive locks are re-asserted so phase two finds them held.
        self.reinstate_in_doubt();
        Ok(())
    }
}

/// Install decoded system state into the database (called from
/// `rebuild_runtime`, which holds the catalog write lock and the
/// exclusive maintenance gate — in that order).
pub(crate) fn install_state(
    db: &Database,
    catalog: &mut Catalog,
    rt: &Runtime,
    state: SystemState,
) {
    *catalog = state.catalog;
    let mut views = db.views.write();
    views.clear();
    for (name, body) in state.views {
        views.insert(name, body);
    }
    *rt.indexes.write() = state.index_defs.into_iter().map(IndexInstance::new).collect();
    rt.next_index_id.store(state.next_index_id, std::sync::atomic::Ordering::Relaxed);
}
