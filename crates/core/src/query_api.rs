//! Declarative queries and views on the facade.
//!
//! Views (§5.4): "To the best of our knowledge, no object-oriented
//! database system supports views at this time; in fact, I do not know
//! at this time of any published account of research into views in
//! object-oriented databases." orion implements them the classic way —
//! query modification: a view is a named, stored query; querying the
//! view splices its predicate into the user's, and granting `Read` on
//! the view (but not the base class) yields content-based authorization.

use crate::authz::{AuthAction, AuthTarget};
use crate::database::{Database, Tx};
use crate::source::SourceView;
use orion_query::ast::{Expr, Query};
use orion_query::{
    execute_with, parse, plan, AccessPath, ExecOptions, ExplainReport, PlannedQuery, QueryResult,
};
use orion_types::{DbError, DbResult};
use std::sync::Arc;

impl Database {
    /// Parse, authorize, plan, and execute a query.
    ///
    /// With MVCC snapshot reads (the default), execution captures one
    /// commit timestamp and resolves every record through the version
    /// store — **zero 2PL locks**, so queries never block writers and
    /// writers never block queries; the transaction still sees its own
    /// uncommitted writes. With `mvcc_reads` disabled, a hierarchy
    /// query takes `S` locks on every class in scope; a class query on
    /// its one class (strict 2PL — released at commit/rollback).
    pub fn query(&self, tx: &Tx, text: &str) -> DbResult<QueryResult> {
        let planned = self.plan(tx, text)?;
        self.run_planned(&planned, tx.id())
    }

    /// Plan a query and return the optimizer's structured explanation
    /// (E4). `Display` renders the classic one-line explain text, so
    /// `db.explain(tx, q)?.to_string()` is the old string API.
    pub fn explain(&self, tx: &Tx, text: &str) -> DbResult<ExplainReport> {
        Ok(self.plan(tx, text)?.report())
    }

    /// Prepare a query once for repeated execution (parse, authorize,
    /// lock, plan). The plan stays valid while the schema and index set
    /// are unchanged; re-prepare after DDL.
    pub fn prepare_query(&self, tx: &Tx, text: &str) -> DbResult<PlannedQuery> {
        self.plan(tx, text)
    }

    /// Execute a previously prepared query (outside any transaction —
    /// under MVCC it still reads a consistent committed snapshot).
    pub fn execute_prepared(&self, planned: &PlannedQuery) -> DbResult<QueryResult> {
        self.run_planned(planned, crate::mvcc::NO_READER)
    }

    /// Execute a planned query for `reader`, under a pinned snapshot
    /// when MVCC reads are on. The snapshot guard spans the whole
    /// execution — chunk-parallel workers share the one timestamp
    /// captured here, so parallel results are byte-identical to serial.
    fn run_planned(&self, planned: &PlannedQuery, reader: u64) -> DbResult<QueryResult> {
        let catalog = self.catalog.read();
        if self.config.mvcc_reads {
            let snapshot = self.mvcc.begin_snapshot(reader);
            let source = SourceView::with_snapshot(self, snapshot.ts(), snapshot.reader());
            execute_with(&catalog, &source, planned, &self.exec_options())
        } else {
            let source = SourceView::new(self);
            execute_with(&catalog, &source, planned, &self.exec_options())
        }
    }

    fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            threads: self.config.query_threads,
            metrics: Some(Arc::clone(&self.metrics.exec)),
        }
    }

    fn plan(&self, tx: &Tx, text: &str) -> DbResult<PlannedQuery> {
        let mut query = parse(text)?;

        // View resolution: a target naming a view splices the stored
        // query in. One level only — views over views are rejected at
        // definition time.
        let view_body = self.views.read().get(&query.target).cloned();
        let mut authz_target = None;
        if let Some(body) = view_body {
            authz_target = Some(AuthTarget::View(query.target.clone()));
            query = splice_view(&query, &parse(&body)?)?;
        }

        let scope = {
            // Short-lived guard: compute the scope, then release before
            // blocking on the lock manager (lock order discipline).
            let catalog = self.catalog.read();
            let target = catalog.class_id(&query.target)?;
            if query.hierarchy {
                catalog.subtree(target)?.as_ref().clone()
            } else {
                vec![target]
            }
        };
        // Authorization: a view grant authorizes the view's content; a
        // plain query needs Read on every class in scope.
        match authz_target {
            Some(t) => self.check_auth(tx, AuthAction::Read, t)?,
            None => {
                for class in &scope {
                    self.check_auth(tx, AuthAction::Read, AuthTarget::Class(*class))?;
                }
            }
        }
        // Snapshot readers take no locks at all; the legacy mode locks
        // the scope `S` so readers serialize against writers.
        if !self.config.mvcc_reads {
            self.locks.lock_hierarchy_read(tx.id(), &scope)?;
        }

        let catalog = self.catalog.read();
        let source = SourceView::new(self);
        let planned = plan(&catalog, &source, query)?;
        match planned.access {
            AccessPath::Scan => self.metrics.exec.scan_picks.inc(),
            _ => self.metrics.exec.index_picks.inc(),
        }
        Ok(planned)
    }

    // ------------------------------------------------------------------
    // Views
    // ------------------------------------------------------------------

    /// Define a view: a named, stored query. The definition is validated
    /// by planning it immediately.
    pub fn define_view(&self, name: &str, body: &str) -> DbResult<()> {
        if self.views.read().contains_key(name) {
            return Err(DbError::AlreadyExists(format!("view `{name}`")));
        }
        let parsed = parse(body)?;
        if self.views.read().contains_key(&parsed.target) {
            return Err(DbError::Query(
                "views over views are not supported; name the base class".into(),
            ));
        }
        if self.catalog.read().class_id(name).is_ok() {
            return Err(DbError::AlreadyExists(format!("class `{name}` (view name collides)")));
        }
        // Validate by planning against the current schema.
        let catalog = self.catalog.read();
        let source = SourceView::new(self);
        plan(&catalog, &source, parsed)?;
        drop(catalog);
        self.views.write().insert(name.to_owned(), body.to_owned());
        self.persist_system_state()
    }

    /// Drop a view.
    pub fn drop_view(&self, name: &str) -> DbResult<()> {
        self.views
            .write()
            .remove(name)
            .ok_or_else(|| DbError::Query(format!("no view named `{name}`")))?;
        self.persist_system_state()
    }

    /// Names of all defined views.
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.views.read().keys().cloned().collect();
        names.sort();
        names
    }
}

/// Merge a user query over a view with the view's stored definition:
/// the base class and hierarchy flag come from the view; predicates are
/// conjoined (after renaming the view's range variable to the user's).
fn splice_view(user: &Query, view: &Query) -> DbResult<Query> {
    let mut merged = user.clone();
    merged.target = view.target.clone();
    merged.hierarchy = view.hierarchy;
    merged.predicate = match (view.predicate.clone(), user.predicate.clone()) {
        (Some(v), Some(u)) => Some(Expr::And(Box::new(v), Box::new(u))),
        (Some(v), None) => Some(v),
        (None, u) => u,
    };
    // View projections/order/limit are advisory; the user query's
    // select list wins (a view is a virtual extent, not a result set).
    Ok(merged)
}
