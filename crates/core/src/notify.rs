//! Change notification (\[CHOU88\]; §3.3 lists it among the CAx
//! requirements "change notification, and so on").
//!
//! Flag-model notification: interested parties subscribe to an object;
//! updates, deletions, version derivations, and default-version changes
//! append notifications that subscribers poll. (The message model —
//! calling back into application code — is the other half of \[CHOU88\];
//! a poll API is what a library can honestly offer.)

use orion_types::Oid;
use std::collections::{HashMap, HashSet};

/// Why a notification fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotificationKind {
    /// The object's state changed.
    Updated,
    /// The object was deleted.
    Deleted,
    /// A new version was derived from the object (or its version set).
    VersionDerived,
    /// The default version of a generic object changed.
    DefaultVersionChanged,
}

/// One notification event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    /// The object the subscription was on.
    pub target: Oid,
    /// What happened.
    pub kind: NotificationKind,
    /// The object that triggered it (e.g. the new version).
    pub by: Option<Oid>,
}

/// Subscription registry + pending notification queues.
#[derive(Debug, Default)]
pub struct NotifyCenter {
    subscribed: HashSet<Oid>,
    pending: HashMap<Oid, Vec<Notification>>,
}

impl NotifyCenter {
    /// An empty center.
    pub fn new() -> Self {
        NotifyCenter::default()
    }

    /// Subscribe to changes of `oid`.
    pub fn subscribe(&mut self, oid: Oid) {
        self.subscribed.insert(oid);
    }

    /// Cancel a subscription (pending notifications are dropped).
    pub fn unsubscribe(&mut self, oid: Oid) {
        self.subscribed.remove(&oid);
        self.pending.remove(&oid);
    }

    /// Record an event if anyone subscribed to `target`.
    pub fn publish(&mut self, target: Oid, kind: NotificationKind, by: Option<Oid>) {
        if self.subscribed.contains(&target) {
            self.pending.entry(target).or_default().push(Notification { target, kind, by });
        }
    }

    /// Drain pending notifications for `oid`.
    pub fn poll(&mut self, oid: Oid) -> Vec<Notification> {
        self.pending.remove(&oid).unwrap_or_default()
    }

    /// Total queued notifications (diagnostics).
    pub fn pending_count(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_types::ClassId;

    fn oid(s: u64) -> Oid {
        Oid::new(ClassId(1), s)
    }

    #[test]
    fn publish_only_reaches_subscribers() {
        let mut nc = NotifyCenter::new();
        nc.subscribe(oid(1));
        nc.publish(oid(1), NotificationKind::Updated, None);
        nc.publish(oid(2), NotificationKind::Updated, None); // unsubscribed
        assert_eq!(nc.pending_count(), 1);
        let got = nc.poll(oid(1));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].kind, NotificationKind::Updated);
        // Poll drains.
        assert!(nc.poll(oid(1)).is_empty());
    }

    #[test]
    fn unsubscribe_drops_pending() {
        let mut nc = NotifyCenter::new();
        nc.subscribe(oid(1));
        nc.publish(oid(1), NotificationKind::Deleted, Some(oid(9)));
        nc.unsubscribe(oid(1));
        assert_eq!(nc.pending_count(), 0);
        nc.publish(oid(1), NotificationKind::Updated, None);
        assert_eq!(nc.pending_count(), 0);
    }

    #[test]
    fn events_accumulate_in_order() {
        let mut nc = NotifyCenter::new();
        nc.subscribe(oid(3));
        nc.publish(oid(3), NotificationKind::VersionDerived, Some(oid(10)));
        nc.publish(oid(3), NotificationKind::DefaultVersionChanged, Some(oid(10)));
        let got = nc.poll(oid(3));
        assert_eq!(got[0].kind, NotificationKind::VersionDerived);
        assert_eq!(got[1].kind, NotificationKind::DefaultVersionChanged);
        assert_eq!(got[1].by, Some(oid(10)));
    }
}
