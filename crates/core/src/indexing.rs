//! Index maintenance: keeping single-class, class-hierarchy, and
//! nested-attribute indexes coherent with object mutations.
//!
//! Simple (path length 1) indexes update locally from the old/new value
//! of the changed attribute. Nested indexes (\[BERT89\]) are the
//! interesting case the paper's §3.2 motivates: when an object that sits
//! *in the middle* of an indexed aggregation path changes, every root
//! object whose path runs through it must be re-keyed. orion finds those
//! roots by climbing the maintained reverse-reference graph along the
//! index path prefix — the standard technique — then diffs each root's
//! key set before/after the mutation.
//!
//! Locking: maintenance runs under the *shared* maintenance gate with
//! the caller's 2PL locks providing isolation; the index set's own
//! `RwLock` guards structural integrity. Holding the `indexes` guard
//! while nested re-keying faults records through the cache is permitted
//! by the lock order (`indexes` precedes the cache shards; see
//! `crate::runtime`). Index *positions* in the `Vec` are stable here
//! because create/drop index take the exclusive gate, which cannot be
//! granted while any mutator holds the shared gate.

use crate::database::Database;
use crate::runtime::Runtime;
use orion_index::{IndexDef, IndexInstance, IndexKind};
use orion_schema::Catalog;
use orion_types::codec::ObjectRecord;
use orion_types::{ClassId, DbResult, Oid, Value};
use std::collections::{HashMap, HashSet};

/// Scalar key values contributed by an attribute value (sets flatten,
/// nulls drop out).
pub(crate) fn keys_of(value: &Value) -> Vec<Value> {
    match value {
        Value::Null => Vec::new(),
        Value::Set(items) | Value::List(items) => {
            items.iter().flat_map(keys_of).collect()
        }
        other => vec![other.clone()],
    }
}

/// The effective (stored-or-default) value of an attribute on a record.
fn effective<'a>(record: &'a ObjectRecord, attr_id: u32, default: &'a Value) -> &'a Value {
    match record.get(attr_id) {
        Some(v) if !v.is_null() => v,
        _ => default,
    }
}

/// Snapshot taken before a mutation: for each nested index, the key set
/// of every affected root.
pub(crate) type NestedSnapshot = Vec<(usize, HashMap<Oid, Vec<Value>>)>;

impl Database {
    /// Does a simple index cover instances of `class`?
    fn simple_covers(catalog: &Catalog, def: &IndexDef, class: ClassId) -> bool {
        match def.kind {
            IndexKind::SingleClass => def.target == class,
            IndexKind::ClassHierarchy => catalog.is_subclass(class, def.target),
            IndexKind::Nested => false,
        }
    }

    /// Effective key values of `attr_id` on `record` for indexing.
    fn record_keys(
        catalog: &Catalog,
        record: &ObjectRecord,
        attr_id: u32,
    ) -> Vec<Value> {
        let Ok(resolved) = catalog.resolve(record.oid.class()) else {
            return Vec::new();
        };
        let Some(attr) = resolved.attr_by_id(attr_id) else { return Vec::new() };
        keys_of(effective(record, attr_id, &attr.default))
    }

    /// Enter a whole record into every covering index (create, rebuild).
    pub(crate) fn index_object_insert(
        &self,
        rt: &Runtime,
        catalog: &Catalog,
        record: &ObjectRecord,
    ) -> DbResult<()> {
        let oid = record.oid;
        let mut indexes = rt.indexes.write();
        for inst in indexes.iter_mut() {
            let def = inst.def.clone();
            match def.kind {
                IndexKind::SingleClass | IndexKind::ClassHierarchy => {
                    if !Self::simple_covers(catalog, &def, oid.class()) {
                        continue;
                    }
                    for key in Self::record_keys(catalog, record, def.path[0]) {
                        inst.imp.insert(key, oid);
                    }
                }
                IndexKind::Nested => {
                    if !catalog.is_subclass(oid.class(), def.target) {
                        continue;
                    }
                    let keys = self.nested_path_values(rt, catalog, oid, &def.path)?;
                    for key in keys {
                        inst.imp.insert(key, oid);
                    }
                }
            }
        }
        Ok(())
    }

    /// Remove a whole record from every covering index (delete, rebuild).
    pub(crate) fn index_object_remove(
        &self,
        rt: &Runtime,
        catalog: &Catalog,
        record: &ObjectRecord,
    ) -> DbResult<()> {
        let oid = record.oid;
        let mut indexes = rt.indexes.write();
        for inst in indexes.iter_mut() {
            let def = inst.def.clone();
            match def.kind {
                IndexKind::SingleClass | IndexKind::ClassHierarchy => {
                    if !Self::simple_covers(catalog, &def, oid.class()) {
                        continue;
                    }
                    for key in Self::record_keys(catalog, record, def.path[0]) {
                        inst.imp.remove(&key, oid);
                    }
                }
                IndexKind::Nested => {
                    if !catalog.is_subclass(oid.class(), def.target) {
                        continue;
                    }
                    // The object is (being) deleted: remove every key it
                    // currently contributes as a root.
                    let keys = self.nested_path_values(rt, catalog, oid, &def.path)?;
                    for key in keys {
                        inst.imp.remove(&key, oid);
                    }
                }
            }
        }
        Ok(())
    }

    /// Update simple indexes after one attribute changed.
    pub(crate) fn simple_index_update(
        &self,
        rt: &Runtime,
        catalog: &Catalog,
        oid: Oid,
        attr_id: u32,
        old_value: &Value,
        new_value: &Value,
    ) {
        let default = catalog
            .resolve(oid.class())
            .ok()
            .and_then(|r| r.attr_by_id(attr_id).map(|a| a.default.clone()))
            .unwrap_or(Value::Null);
        let old_keys = keys_of(if old_value.is_null() { &default } else { old_value });
        let new_keys = keys_of(if new_value.is_null() { &default } else { new_value });
        let mut indexes = rt.indexes.write();
        for inst in indexes.iter_mut() {
            let simple = matches!(
                inst.def.kind,
                IndexKind::SingleClass | IndexKind::ClassHierarchy
            );
            if !simple || inst.def.path[0] != attr_id {
                continue;
            }
            let covers = match inst.def.kind {
                IndexKind::SingleClass => inst.def.target == oid.class(),
                _ => catalog.is_subclass(oid.class(), inst.def.target),
            };
            if !covers {
                continue;
            }
            for key in &old_keys {
                inst.imp.remove(key, oid);
            }
            for key in &new_keys {
                inst.imp.insert(key.clone(), oid);
            }
        }
    }

    /// Evaluate a nested path (attribute-id chain) from `root`,
    /// returning the leaf key values. Dangling references contribute
    /// nothing.
    pub(crate) fn nested_path_values(
        &self,
        rt: &Runtime,
        catalog: &Catalog,
        root: Oid,
        path: &[u32],
    ) -> DbResult<Vec<Value>> {
        let mut frontier: Vec<Value> = vec![Value::Ref(root)];
        for (i, attr_id) in path.iter().enumerate() {
            let mut next = Vec::new();
            for v in &frontier {
                let Value::Ref(o) = v else { continue };
                let Some(record) = self.try_load_record(rt, catalog, *o) else { continue };
                let Ok(resolved) = catalog.resolve(o.class()) else { continue };
                let Some(attr) = resolved.attr_by_id(*attr_id) else { continue };
                let value = effective(&record, *attr_id, &attr.default).clone();
                match value {
                    Value::Null => {}
                    Value::Set(items) | Value::List(items) => next.extend(items),
                    other => next.push(other),
                }
            }
            frontier = next;
            if frontier.is_empty() && i + 1 < path.len() {
                return Ok(Vec::new());
            }
        }
        Ok(frontier.into_iter().filter(|v| !v.is_null()).collect())
    }

    /// Roots of `def` whose indexed path may run through `oid`: climb
    /// the reverse-reference graph along every prefix of the path.
    fn nested_roots(
        &self,
        rt: &Runtime,
        catalog: &Catalog,
        def_target: ClassId,
        path: &[u32],
        oid: Oid,
    ) -> HashSet<Oid> {
        let mut roots = HashSet::new();
        for depth in 0..path.len() {
            // Objects at `depth` steps from a root; climb `depth` edges.
            let mut frontier: HashSet<Oid> = HashSet::from([oid]);
            for k in (0..depth).rev() {
                let mut up = HashSet::new();
                for o in &frontier {
                    rt.reverse.with(*o, |edges| {
                        if let Some(edges) = edges {
                            for (referrer, attr) in edges {
                                if *attr == path[k] {
                                    up.insert(*referrer);
                                }
                            }
                        }
                    });
                }
                frontier = up;
                if frontier.is_empty() {
                    break;
                }
            }
            for candidate in frontier {
                if catalog.is_subclass(candidate.class(), def_target) {
                    roots.insert(candidate);
                }
            }
        }
        roots
    }

    /// Phase 1 of nested maintenance: snapshot the key sets of every
    /// root that might be affected by a mutation of `oid`. The nested
    /// defs are copied out under a short read guard — path evaluation
    /// faults records and must not pin the index set.
    pub(crate) fn nested_snapshot(
        &self,
        rt: &Runtime,
        catalog: &Catalog,
        oid: Oid,
    ) -> DbResult<NestedSnapshot> {
        let nested: Vec<(usize, IndexDef)> = rt
            .indexes
            .read()
            .iter()
            .enumerate()
            .filter(|(_, inst)| inst.def.kind == IndexKind::Nested)
            .map(|(i, inst)| (i, inst.def.clone()))
            .collect();
        let mut snapshot = Vec::new();
        for (i, def) in nested {
            let roots = self.nested_roots(rt, catalog, def.target, &def.path, oid);
            if roots.is_empty() {
                continue;
            }
            let mut keyed = HashMap::new();
            for root in roots {
                let keys = self.nested_path_values(rt, catalog, root, &def.path)?;
                keyed.insert(root, keys);
            }
            snapshot.push((i, keyed));
        }
        Ok(snapshot)
    }

    /// Phase 2: recompute the same roots and apply the key-set diff.
    /// Positions from the snapshot remain valid: index create/drop needs
    /// the exclusive gate, which the mutating caller's shared gate guard
    /// excludes for the whole operation.
    pub(crate) fn nested_apply_diff(
        &self,
        rt: &Runtime,
        catalog: &Catalog,
        snapshot: NestedSnapshot,
    ) -> DbResult<()> {
        for (i, pre) in snapshot {
            let def = rt.indexes.read()[i].def.clone();
            for (root, old_keys) in pre {
                // A root that was deleted mid-operation keys to nothing.
                let new_keys = if rt.directory.contains(root) {
                    self.nested_path_values(rt, catalog, root, &def.path)?
                } else {
                    Vec::new()
                };
                let mut indexes = rt.indexes.write();
                let inst: &mut IndexInstance = &mut indexes[i];
                for key in &old_keys {
                    if !new_keys.iter().any(|k| k.eq_total(key)) {
                        inst.imp.remove(key, root);
                    }
                }
                for key in new_keys {
                    if !old_keys.iter().any(|k| k.eq_total(&key)) {
                        inst.imp.insert(key, root);
                    }
                }
            }
        }
        Ok(())
    }
}
