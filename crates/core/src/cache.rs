//! The memory-resident object cache with pointer swizzling.
//!
//! "A much better solution is to store logical object identifiers within
//! the objects in the database, and convert them to memory pointers to
//! related objects ... as an object is fetched from the database, the
//! object identifiers embedded in the object are converted to memory
//! pointers that will point to some descriptors for the objects that the
//! object references. The referenced objects may later be fetched as
//! necessary ... This is the approach developed to make objects
//! persistent in the LOOM system; this approach has been adopted and
//! refined in ORION" (§3.3).
//!
//! Resident objects live in a slab; reference attributes carry a
//! *swizzle slot*: after the first traversal resolves the target, later
//! traversals jump straight to the slab slot (validated against the OID
//! so eviction and slot reuse stay safe). Swizzling can be disabled to
//! measure its benefit (experiment E3).

use orion_types::codec::ObjectRecord;
use orion_types::{Oid, Value};
use std::collections::HashMap;

/// Counters for cache behavior (experiments E3/E10 read these).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered by a resident object.
    pub hits: u64,
    /// Lookups that required a fault-in from storage.
    pub misses: u64,
    /// Residents evicted to stay within capacity.
    pub evictions: u64,
    /// Ref traversals answered directly through a valid swizzle slot.
    pub swizzled_hops: u64,
    /// Ref traversals that had to resolve via the OID map.
    pub unswizzled_hops: u64,
}

/// A resident object: the decoded record plus swizzle slots for its
/// reference attributes.
#[derive(Debug)]
pub struct Resident {
    /// The object's identity.
    pub oid: Oid,
    /// Decoded record (write-through: always matches storage).
    pub record: ObjectRecord,
    /// `attr id → (slab slot, expected OID)` — the swizzle table. A hit
    /// validates only `slab[slot].oid == expected`, skipping both the
    /// record lookup and the OID hash (this is what makes a swizzled
    /// hop "a few memory lookups"). Entries are hints; eviction and
    /// slot reuse are caught by the validation.
    swizzles: HashMap<u32, (usize, Oid)>,
    last_used: u64,
}

/// An LRU-capped slab of resident objects.
#[derive(Debug)]
pub struct ObjectCache {
    slab: Vec<Option<Resident>>,
    by_oid: HashMap<Oid, usize>,
    free: Vec<usize>,
    capacity: usize,
    tick: u64,
    swizzling: bool,
    stats: CacheStats,
}

impl ObjectCache {
    /// A cache holding at most `capacity` resident objects.
    pub fn new(capacity: usize, swizzling: bool) -> Self {
        assert!(capacity > 0, "object cache needs capacity");
        ObjectCache {
            slab: Vec::new(),
            by_oid: HashMap::new(),
            free: Vec::new(),
            capacity,
            tick: 0,
            swizzling,
            stats: CacheStats::default(),
        }
    }

    /// Enable/disable swizzling (clears existing swizzle slots).
    pub fn set_swizzling(&mut self, on: bool) {
        self.swizzling = on;
        for slot in self.slab.iter_mut().flatten() {
            slot.swizzles.clear();
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset the counters.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of resident objects.
    pub fn len(&self) -> usize {
        self.by_oid.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.by_oid.is_empty()
    }

    fn touch(&mut self, slot: usize) {
        self.tick += 1;
        if let Some(r) = &mut self.slab[slot] {
            r.last_used = self.tick;
        }
    }

    /// The slab slot of `oid` if resident (counts a hit/miss).
    pub fn lookup(&mut self, oid: Oid) -> Option<usize> {
        match self.by_oid.get(&oid).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.touch(slot);
                Some(slot)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Is `oid` resident? (No stats side effects.)
    pub fn contains(&self, oid: Oid) -> bool {
        self.by_oid.contains_key(&oid)
    }

    /// The resident record for `oid`, if any, without touching recency
    /// order or the hit/miss counters. This is the read-concurrent
    /// probe: queries holding a shared runtime guard use it, and cache
    /// accounting stays with the faulting [`ObjectCache::lookup`] path.
    pub fn peek(&self, oid: Oid) -> Option<&ObjectRecord> {
        let slot = *self.by_oid.get(&oid)?;
        self.slab.get(slot)?.as_ref().map(|r| &r.record)
    }

    /// Make `record` resident; evicts the LRU resident when full.
    /// Returns the slab slot.
    pub fn admit(&mut self, record: ObjectRecord) -> usize {
        let oid = record.oid;
        if let Some(&slot) = self.by_oid.get(&oid) {
            // Refresh in place (write-through update). Swizzles may now
            // point at stale targets; drop them.
            self.tick += 1;
            let tick = self.tick;
            if let Some(r) = &mut self.slab[slot] {
                r.record = record;
                r.last_used = tick;
                r.swizzles.clear();
            }
            return slot;
        }
        if self.by_oid.len() >= self.capacity {
            // Evict the least recently used resident.
            let victim = self
                .slab
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.as_ref().map(|r| (i, r.last_used)))
                .min_by_key(|(_, t)| *t)
                .map(|(i, _)| i)
                .expect("cache non-empty at capacity");
            self.evict_slot(victim);
        }
        self.tick += 1;
        let resident =
            Resident { oid, record, swizzles: HashMap::new(), last_used: self.tick };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s] = Some(resident);
                s
            }
            None => {
                self.slab.push(Some(resident));
                self.slab.len() - 1
            }
        };
        self.by_oid.insert(oid, slot);
        slot
    }

    fn evict_slot(&mut self, slot: usize) {
        if let Some(r) = self.slab[slot].take() {
            self.by_oid.remove(&r.oid);
            self.free.push(slot);
            self.stats.evictions += 1;
        }
    }

    /// Drop `oid` from the cache (object deleted or rolled back).
    pub fn invalidate(&mut self, oid: Oid) {
        if let Some(slot) = self.by_oid.get(&oid).copied() {
            if let Some(r) = self.slab[slot].take() {
                self.by_oid.remove(&r.oid);
                self.free.push(slot);
            }
        }
    }

    /// Drop everything (crash simulation, bulk schema change).
    pub fn clear(&mut self) {
        self.slab.clear();
        self.by_oid.clear();
        self.free.clear();
    }

    /// Read an attribute of the resident at `slot`.
    pub fn attr(&mut self, slot: usize, attr: u32) -> Option<Value> {
        self.touch(slot);
        self.slab[slot].as_ref().and_then(|r| r.record.get(attr).cloned())
    }

    /// The resident record at `slot` (None if the slot was evicted).
    pub fn record(&self, slot: usize) -> Option<&ObjectRecord> {
        self.slab[slot].as_ref().map(|r| &r.record)
    }

    /// Overwrite the resident record at `slot` (write-through update);
    /// clears swizzle slots for changed reference attributes implicitly
    /// by replacing the record (slots are re-validated on use anyway).
    pub fn update_record(&mut self, slot: usize, record: ObjectRecord) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(r) = &mut self.slab[slot] {
            r.record = record;
            r.last_used = tick;
            r.swizzles.clear();
        }
    }

    /// Traverse the reference attribute `attr` of the resident at
    /// `from_slot`. Returns the target's slab slot if resident —
    /// following the swizzle slot when valid, falling back to the OID
    /// map (and recording the new swizzle) otherwise. `Ok(Err(oid))`
    /// means the target is not resident and must be faulted in by the
    /// caller, who then calls [`ObjectCache::note_swizzle`].
    pub fn traverse_ref(&mut self, from_slot: usize, attr: u32) -> Option<Result<usize, Oid>> {
        // Fast path: a valid swizzle answers without touching the record
        // bytes or the OID map at all.
        if self.swizzling {
            let hint = self.slab[from_slot].as_ref()?.swizzles.get(&attr).copied();
            if let Some((slot, expected)) = hint {
                let valid = self
                    .slab
                    .get(slot)
                    .and_then(|s| s.as_ref())
                    .is_some_and(|r| r.oid == expected);
                if valid {
                    self.stats.swizzled_hops += 1;
                    return Some(Ok(slot));
                }
            }
        }
        let target_oid = {
            let r = self.slab[from_slot].as_ref()?;
            r.record.get(attr).and_then(|v| v.as_ref_oid())?
        };
        self.stats.unswizzled_hops += 1;
        match self.by_oid.get(&target_oid).copied() {
            Some(slot) => {
                if self.swizzling {
                    if let Some(r) = self.slab[from_slot].as_mut() {
                        r.swizzles.insert(attr, (slot, target_oid));
                    }
                }
                self.touch(slot);
                Some(Ok(slot))
            }
            None => Some(Err(target_oid)),
        }
    }

    /// Record that `attr` of `from_slot` now resolves to `target_slot`
    /// (after the caller faulted the target in).
    pub fn note_swizzle(&mut self, from_slot: usize, attr: u32, target_slot: usize) {
        if self.swizzling {
            let expected = match self.slab.get(target_slot).and_then(|s| s.as_ref()) {
                Some(r) => r.oid,
                None => return,
            };
            if let Some(r) = self.slab[from_slot].as_mut() {
                r.swizzles.insert(attr, (target_slot, expected));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_types::ClassId;

    fn rec(class: u16, serial: u64, refs: &[(u32, Oid)]) -> ObjectRecord {
        ObjectRecord::new(
            Oid::new(ClassId(class), serial),
            0,
            refs.iter().map(|(a, o)| (*a, Value::Ref(*o))).collect(),
        )
    }

    #[test]
    fn admit_lookup_invalidate() {
        let mut cache = ObjectCache::new(4, true);
        let r = rec(1, 1, &[]);
        let oid = r.oid;
        let slot = cache.admit(r);
        assert_eq!(cache.lookup(oid), Some(slot));
        assert_eq!(cache.stats().hits, 1);
        cache.invalidate(oid);
        assert_eq!(cache.lookup(oid), None);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut cache = ObjectCache::new(2, true);
        let a = rec(1, 1, &[]);
        let b = rec(1, 2, &[]);
        let c = rec(1, 3, &[]);
        let (ao, bo, co) = (a.oid, b.oid, c.oid);
        cache.admit(a);
        cache.admit(b);
        cache.lookup(ao); // a more recent than b
        cache.admit(c); // evicts b
        assert!(cache.contains(ao));
        assert!(!cache.contains(bo));
        assert!(cache.contains(co));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn swizzled_traversal_fast_path() {
        let mut cache = ObjectCache::new(8, true);
        let b = rec(1, 2, &[]);
        let b_oid = b.oid;
        let a = rec(1, 1, &[(7, b_oid)]);
        let a_slot = cache.admit(a);
        let b_slot = cache.admit(b);
        // First hop: unswizzled (map lookup), records the slot.
        assert_eq!(cache.traverse_ref(a_slot, 7), Some(Ok(b_slot)));
        assert_eq!(cache.stats().unswizzled_hops, 1);
        // Second hop: swizzled.
        assert_eq!(cache.traverse_ref(a_slot, 7), Some(Ok(b_slot)));
        assert_eq!(cache.stats().swizzled_hops, 1);
    }

    #[test]
    fn swizzle_invalidated_by_eviction_and_slot_reuse() {
        let mut cache = ObjectCache::new(2, true);
        let b = rec(1, 2, &[]);
        let b_oid = b.oid;
        let a = rec(1, 1, &[(7, b_oid)]);
        let a_slot = cache.admit(a);
        let b_slot = cache.admit(b);
        assert_eq!(cache.traverse_ref(a_slot, 7), Some(Ok(b_slot)));
        assert_eq!(cache.traverse_ref(a_slot, 7), Some(Ok(b_slot))); // swizzled now
        // Touch a so b is LRU, then admit c reusing b's slot.
        cache.lookup(Oid::new(ClassId(1), 1));
        let c = rec(1, 3, &[]);
        cache.admit(c);
        // The stale swizzle must not resolve to c.
        match cache.traverse_ref(a_slot, 7) {
            Some(Err(oid)) => assert_eq!(oid, b_oid, "fault-in requested for b"),
            other => panic!("stale swizzle followed: {other:?}"),
        }
    }

    #[test]
    fn unswizzled_mode_never_uses_slots() {
        let mut cache = ObjectCache::new(8, false);
        let b = rec(1, 2, &[]);
        let a = rec(1, 1, &[(7, b.oid)]);
        let a_slot = cache.admit(a);
        let _b_slot = cache.admit(b);
        for _ in 0..3 {
            assert!(matches!(cache.traverse_ref(a_slot, 7), Some(Ok(_))));
        }
        assert_eq!(cache.stats().swizzled_hops, 0);
        assert_eq!(cache.stats().unswizzled_hops, 3);
    }

    #[test]
    fn traverse_non_ref_attr_is_none() {
        let mut cache = ObjectCache::new(4, true);
        let mut r = rec(1, 1, &[]);
        r.set(3, Value::Int(5));
        let slot = cache.admit(r);
        assert!(cache.traverse_ref(slot, 3).is_none(), "Int is not traversable");
        assert!(cache.traverse_ref(slot, 99).is_none(), "missing attr");
    }

    #[test]
    fn update_record_clears_swizzles() {
        let mut cache = ObjectCache::new(8, true);
        let b = rec(1, 2, &[]);
        let c = rec(1, 3, &[]);
        let b_oid = b.oid;
        let c_oid = c.oid;
        let a = rec(1, 1, &[(7, b_oid)]);
        let a_slot = cache.admit(a);
        let _ = cache.admit(b);
        let c_slot = cache.admit(c);
        let _ = cache.traverse_ref(a_slot, 7); // swizzle a.7 -> b
        // Redirect a.7 to c.
        let new_a = rec(1, 1, &[(7, c_oid)]);
        cache.update_record(a_slot, new_a);
        assert_eq!(cache.traverse_ref(a_slot, 7), Some(Ok(c_slot)));
    }

    #[test]
    fn admit_same_oid_refreshes() {
        let mut cache = ObjectCache::new(4, true);
        let mut r = rec(1, 1, &[]);
        r.set(3, Value::Int(1));
        let slot1 = cache.admit(r.clone());
        r.set(3, Value::Int(2));
        let slot2 = cache.admit(r);
        assert_eq!(slot1, slot2);
        assert_eq!(cache.attr(slot1, 3), Some(Value::Int(2)));
        assert_eq!(cache.len(), 1);
    }
}
