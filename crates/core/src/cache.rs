//! The memory-resident object cache with pointer swizzling.
//!
//! "A much better solution is to store logical object identifiers within
//! the objects in the database, and convert them to memory pointers to
//! related objects ... as an object is fetched from the database, the
//! object identifiers embedded in the object are converted to memory
//! pointers that will point to some descriptors for the objects that the
//! object references. The referenced objects may later be fetched as
//! necessary ... This is the approach developed to make objects
//! persistent in the LOOM system; this approach has been adopted and
//! refined in ORION" (§3.3).
//!
//! Resident objects live in a slab; reference attributes carry a
//! *swizzle hint*: after the first traversal resolves the target, later
//! traversals jump straight to the slab slot (validated against the OID
//! so eviction and slot reuse stay safe). Swizzling can be disabled to
//! measure its benefit (experiment E3).
//!
//! Since the runtime decomposition, the production cache is
//! [`ShardedCache`]: OID-sharded [`ObjectCache`]s, each behind its own
//! short mutex, so transactions touching disjoint objects fault, admit,
//! and navigate without contending. Swizzle hints are *shard-qualified*
//! (`(shard, slot, expected OID)`), so a warm traversal stays pure
//! pointer chasing even when a hop crosses shards; the hop protocol
//! holds at most one shard lock at a time, which keeps the shard locks
//! true leaves in the system lock order (`crate::runtime` docs).

use orion_types::codec::ObjectRecord;
use orion_types::{Oid, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Counters for cache behavior (experiments E3/E10 read these).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered by a resident object.
    pub hits: u64,
    /// Lookups that required a fault-in from storage.
    pub misses: u64,
    /// Residents evicted to stay within capacity.
    pub evictions: u64,
    /// Ref traversals answered directly through a valid swizzle hint.
    pub swizzled_hops: u64,
    /// Ref traversals that had to resolve via the OID map.
    pub unswizzled_hops: u64,
}

/// A swizzle hint: where a reference attribute's target was resident
/// when last traversed. Validated (never trusted) on use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SwizzleHint {
    /// Cache shard holding the target (always the owner's own shard id
    /// for a standalone [`ObjectCache`]).
    pub shard: u32,
    /// Slab slot within that shard.
    pub slot: u32,
    /// The OID the slot is expected to hold; a mismatch (eviction, slot
    /// reuse) invalidates the hint.
    pub expected: Oid,
}

/// A resident object: the decoded record plus swizzle hints for its
/// reference attributes.
#[derive(Debug)]
pub struct Resident {
    /// The object's identity.
    pub oid: Oid,
    /// Decoded record (write-through: always matches storage). Shared
    /// so the read-concurrent query path can hold the record without
    /// cloning its attributes or pinning a shard lock.
    pub record: Arc<ObjectRecord>,
    /// `attr id → hint` — the swizzle table. A hit validates only
    /// `shard.slab[slot].oid == expected`, skipping both the record
    /// lookup and the OID hash (this is what makes a swizzled hop "a
    /// few memory lookups"). Entries are hints; eviction and slot reuse
    /// are caught by the validation.
    swizzles: HashMap<u32, SwizzleHint>,
    last_used: u64,
}

/// An LRU-capped slab of resident objects: one shard of the production
/// [`ShardedCache`] (or a standalone cache in tests and tools).
#[derive(Debug)]
pub struct ObjectCache {
    slab: Vec<Option<Resident>>,
    by_oid: HashMap<Oid, usize>,
    free: Vec<usize>,
    capacity: usize,
    tick: u64,
    swizzling: bool,
    shard_id: u32,
    stats: CacheStats,
}

impl ObjectCache {
    /// A cache holding at most `capacity` resident objects.
    pub fn new(capacity: usize, swizzling: bool) -> Self {
        Self::with_shard(capacity, swizzling, 0)
    }

    /// A cache that records swizzle hints qualified with `shard_id`
    /// (what [`ShardedCache`] constructs).
    pub(crate) fn with_shard(capacity: usize, swizzling: bool, shard_id: u32) -> Self {
        assert!(capacity > 0, "object cache needs capacity");
        ObjectCache {
            slab: Vec::new(),
            by_oid: HashMap::new(),
            free: Vec::new(),
            capacity,
            tick: 0,
            swizzling,
            shard_id,
            stats: CacheStats::default(),
        }
    }

    /// Enable/disable swizzling (clears existing swizzle hints).
    pub fn set_swizzling(&mut self, on: bool) {
        self.swizzling = on;
        for slot in self.slab.iter_mut().flatten() {
            slot.swizzles.clear();
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset the counters.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of resident objects.
    pub fn len(&self) -> usize {
        self.by_oid.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.by_oid.is_empty()
    }

    fn touch(&mut self, slot: usize) {
        self.tick += 1;
        if let Some(r) = &mut self.slab[slot] {
            r.last_used = self.tick;
        }
    }

    /// The slab slot of `oid` if resident (counts a hit/miss).
    pub fn lookup(&mut self, oid: Oid) -> Option<usize> {
        match self.by_oid.get(&oid).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.touch(slot);
                Some(slot)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Is `oid` resident? (No stats side effects.)
    pub fn contains(&self, oid: Oid) -> bool {
        self.by_oid.contains_key(&oid)
    }

    /// The resident record for `oid`, if any, without touching recency
    /// order or the hit/miss counters. This is the read-concurrent
    /// probe: queries use it, and cache accounting stays with the
    /// faulting [`ObjectCache::lookup`] path.
    pub fn peek(&self, oid: Oid) -> Option<&Arc<ObjectRecord>> {
        let slot = *self.by_oid.get(&oid)?;
        self.slab.get(slot)?.as_ref().map(|r| &r.record)
    }

    /// The slab slot of `oid` without stats or recency side effects
    /// (hop source probes).
    pub(crate) fn slot_of(&self, oid: Oid) -> Option<usize> {
        self.by_oid.get(&oid).copied()
    }

    /// The slab slot of `oid`, refreshing recency but counting nothing
    /// (hop target probes — the old in-slab traversal touched resident
    /// targets the same way).
    pub(crate) fn resident_slot(&mut self, oid: Oid) -> Option<usize> {
        let slot = self.by_oid.get(&oid).copied()?;
        self.touch(slot);
        Some(slot)
    }

    /// Make `record` resident; evicts the LRU resident when full.
    /// Returns the slab slot.
    pub fn admit(&mut self, record: ObjectRecord) -> usize {
        let oid = record.oid;
        if let Some(&slot) = self.by_oid.get(&oid) {
            // Refresh in place (write-through update). Swizzles may now
            // point at stale targets; drop them.
            self.tick += 1;
            let tick = self.tick;
            if let Some(r) = &mut self.slab[slot] {
                r.record = Arc::new(record);
                r.last_used = tick;
                r.swizzles.clear();
            }
            return slot;
        }
        if self.by_oid.len() >= self.capacity {
            // Evict the least recently used resident.
            let victim = self
                .slab
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.as_ref().map(|r| (i, r.last_used)))
                .min_by_key(|(_, t)| *t)
                .map(|(i, _)| i)
                .expect("cache non-empty at capacity");
            self.evict_slot(victim);
        }
        self.tick += 1;
        let resident = Resident {
            oid,
            record: Arc::new(record),
            swizzles: HashMap::new(),
            last_used: self.tick,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s] = Some(resident);
                s
            }
            None => {
                self.slab.push(Some(resident));
                self.slab.len() - 1
            }
        };
        self.by_oid.insert(oid, slot);
        slot
    }

    fn evict_slot(&mut self, slot: usize) {
        if let Some(r) = self.slab[slot].take() {
            self.by_oid.remove(&r.oid);
            self.free.push(slot);
            self.stats.evictions += 1;
        }
    }

    /// Drop `oid` from the cache (object deleted or rolled back).
    pub fn invalidate(&mut self, oid: Oid) {
        if let Some(slot) = self.by_oid.get(&oid).copied() {
            if let Some(r) = self.slab[slot].take() {
                self.by_oid.remove(&r.oid);
                self.free.push(slot);
            }
        }
    }

    /// Drop everything (crash simulation, bulk schema change).
    pub fn clear(&mut self) {
        self.slab.clear();
        self.by_oid.clear();
        self.free.clear();
    }

    /// Read an attribute of the resident at `slot`.
    pub fn attr(&mut self, slot: usize, attr: u32) -> Option<Value> {
        self.touch(slot);
        self.slab[slot].as_ref().and_then(|r| r.record.get(attr).cloned())
    }

    /// The resident record at `slot` (None if the slot was evicted).
    pub fn record(&self, slot: usize) -> Option<&ObjectRecord> {
        self.slab[slot].as_ref().map(|r| &*r.record)
    }

    /// Shared handle to the resident record at `slot`.
    pub(crate) fn record_arc(&self, slot: usize) -> Option<Arc<ObjectRecord>> {
        self.slab[slot].as_ref().map(|r| Arc::clone(&r.record))
    }

    /// Overwrite the resident record at `slot` (write-through update);
    /// clears swizzle hints — they may point at targets the new value
    /// no longer references.
    pub fn update_record(&mut self, slot: usize, record: ObjectRecord) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(r) = &mut self.slab[slot] {
            r.record = Arc::new(record);
            r.last_used = tick;
            r.swizzles.clear();
        }
    }

    /// The swizzle hint recorded for `attr` of the resident at `slot`
    /// (None when swizzling is off).
    pub(crate) fn hint(&self, slot: usize, attr: u32) -> Option<SwizzleHint> {
        if !self.swizzling {
            return None;
        }
        self.slab.get(slot)?.as_ref()?.swizzles.get(&attr).copied()
    }

    /// Record a hint for `attr` of the resident at `slot` (no-op when
    /// swizzling is off).
    pub(crate) fn set_hint(&mut self, slot: usize, attr: u32, hint: SwizzleHint) {
        if !self.swizzling {
            return;
        }
        if let Some(r) = self.slab.get_mut(slot).and_then(|s| s.as_mut()) {
            r.swizzles.insert(attr, hint);
        }
    }

    /// Does `slot` currently hold `expected`? (Hint validation; no
    /// recency or stats side effects, matching the swizzled fast path.)
    pub(crate) fn validate(&self, slot: usize, expected: Oid) -> bool {
        self.slab.get(slot).and_then(|s| s.as_ref()).is_some_and(|r| r.oid == expected)
    }

    /// The target OID of reference attribute `attr` at `slot` (None if
    /// the slot is empty or the attribute is not a scalar reference).
    pub(crate) fn ref_target(&self, slot: usize, attr: u32) -> Option<Oid> {
        self.slab.get(slot)?.as_ref()?.record.get(attr).and_then(|v| v.as_ref_oid())
    }

    /// Traverse the reference attribute `attr` of the resident at
    /// `from_slot` within this one cache. Returns the target's slab
    /// slot if resident — following the swizzle hint when valid,
    /// falling back to the OID map (and recording the new hint)
    /// otherwise. `Ok(Err(oid))` means the target is not resident and
    /// must be faulted in by the caller, who then calls
    /// [`ObjectCache::note_swizzle`].
    pub fn traverse_ref(&mut self, from_slot: usize, attr: u32) -> Option<Result<usize, Oid>> {
        // Fast path: a valid swizzle answers without touching the record
        // bytes or the OID map at all.
        if self.swizzling {
            let hint = self.slab[from_slot].as_ref()?.swizzles.get(&attr).copied();
            if let Some(h) = hint {
                if h.shard == self.shard_id && self.validate(h.slot as usize, h.expected) {
                    self.stats.swizzled_hops += 1;
                    return Some(Ok(h.slot as usize));
                }
            }
        }
        let target_oid = {
            let r = self.slab[from_slot].as_ref()?;
            r.record.get(attr).and_then(|v| v.as_ref_oid())?
        };
        self.stats.unswizzled_hops += 1;
        match self.by_oid.get(&target_oid).copied() {
            Some(slot) => {
                let shard = self.shard_id;
                if self.swizzling {
                    if let Some(r) = self.slab[from_slot].as_mut() {
                        r.swizzles.insert(
                            attr,
                            SwizzleHint { shard, slot: slot as u32, expected: target_oid },
                        );
                    }
                }
                self.touch(slot);
                Some(Ok(slot))
            }
            None => Some(Err(target_oid)),
        }
    }

    /// Record that `attr` of `from_slot` now resolves to `target_slot`
    /// (after the caller faulted the target in).
    pub fn note_swizzle(&mut self, from_slot: usize, attr: u32, target_slot: usize) {
        if self.swizzling {
            let expected = match self.slab.get(target_slot).and_then(|s| s.as_ref()) {
                Some(r) => r.oid,
                None => return,
            };
            let shard = self.shard_id;
            if let Some(r) = self.slab[from_slot].as_mut() {
                r.swizzles.insert(
                    attr,
                    SwizzleHint { shard, slot: target_slot as u32, expected },
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// The sharded production cache
// ---------------------------------------------------------------------

/// Outcome of one reference hop through the sharded cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Hop {
    /// The hop resolved; `true` means the swizzle fast path answered.
    To(Oid, bool),
    /// The attribute is a reference but its target is not resident; the
    /// caller faults it in and then calls [`ShardedCache::note`].
    Miss(Oid),
    /// The attribute exists but is not a scalar reference (or the
    /// source record has no such attribute).
    NotRef,
    /// The source object itself is not resident; the caller re-admits
    /// it and retries.
    Absent,
}

/// The production object cache: OID-sharded [`ObjectCache`]s behind
/// short per-shard mutexes. Capacity is divided across shards (LRU is
/// per-shard); small caches collapse to one shard so eviction-sensitive
/// experiments behave exactly like the unsharded cache. Hop and hint
/// bookkeeping never holds two shard locks at once.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Box<[parking_lot::Mutex<ObjectCache>]>,
    swizzled_hops: AtomicU64,
    unswizzled_hops: AtomicU64,
}

/// Below this total capacity the cache stays single-shard: dividing a
/// tiny capacity sixteen ways would distort per-shard LRU behavior that
/// experiments (E3/E10) deliberately provoke.
const SINGLE_SHARD_BELOW: usize = 256;
const CACHE_SHARDS: usize = 16;

impl ShardedCache {
    /// A sharded cache holding at most `capacity` residents in total.
    pub fn new(capacity: usize, swizzling: bool) -> Self {
        assert!(capacity > 0, "object cache needs capacity");
        let n = if capacity < SINGLE_SHARD_BELOW { 1 } else { CACHE_SHARDS };
        let per_shard = capacity.div_ceil(n);
        ShardedCache {
            shards: (0..n)
                .map(|i| {
                    parking_lot::Mutex::new(ObjectCache::with_shard(
                        per_shard, swizzling, i as u32,
                    ))
                })
                .collect(),
            swizzled_hops: AtomicU64::new(0),
            unswizzled_hops: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_idx(&self, oid: Oid) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            ((oid.serial() ^ ((oid.class().0 as u64) << 3)) as usize) % self.shards.len()
        }
    }

    #[inline]
    fn shard(&self, oid: Oid) -> &parking_lot::Mutex<ObjectCache> {
        &self.shards[self.shard_idx(oid)]
    }

    /// The resident record for `oid`, counting a hit or miss and
    /// refreshing recency (the faulting path's probe).
    pub(crate) fn get(&self, oid: Oid) -> Option<Arc<ObjectRecord>> {
        let mut c = self.shard(oid).lock();
        let slot = c.lookup(oid)?;
        c.record_arc(slot)
    }

    /// The resident record for `oid` with no stats or recency side
    /// effects (the read-concurrent probe).
    pub(crate) fn peek(&self, oid: Oid) -> Option<Arc<ObjectRecord>> {
        let c = self.shard(oid).lock();
        c.peek(oid).cloned()
    }

    /// Is `oid` resident? (No side effects.)
    pub fn contains(&self, oid: Oid) -> bool {
        self.shard(oid).lock().contains(oid)
    }

    /// Make `record` resident in its shard.
    pub(crate) fn admit(&self, record: ObjectRecord) {
        self.shard(record.oid).lock().admit(record);
    }

    /// Write-through refresh: counts the same hit/miss as the faulting
    /// path (parity with the pre-decomposition `lookup` + update
    /// sequence), then installs the new record.
    pub(crate) fn refresh(&self, record: &ObjectRecord) {
        let mut c = self.shard(record.oid).lock();
        match c.lookup(record.oid) {
            Some(slot) => c.update_record(slot, record.clone()),
            None => {
                c.admit(record.clone());
            }
        }
    }

    /// Drop `oid` (deleted or rolled back).
    pub(crate) fn invalidate(&self, oid: Oid) {
        self.shard(oid).lock().invalidate(oid);
    }

    /// Drop everything (crash simulation, cold-cache setup).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().clear();
        }
    }

    /// Total resident objects across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enable/disable swizzling on every shard.
    pub fn set_swizzling(&self, on: bool) {
        for shard in self.shards.iter() {
            shard.lock().set_swizzling(on);
        }
    }

    /// Aggregated counters across shards plus the cross-shard hop
    /// counts. Shard locks are taken one at a time (leaf locks), so
    /// this is safe from any thread at any time.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in self.shards.iter() {
            let s = shard.lock().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.swizzled_hops += s.swizzled_hops;
            total.unswizzled_hops += s.unswizzled_hops;
        }
        total.swizzled_hops += self.swizzled_hops.load(Relaxed);
        total.unswizzled_hops += self.unswizzled_hops.load(Relaxed);
        total
    }

    /// Reset every counter.
    pub fn reset_stats(&self) {
        for shard in self.shards.iter() {
            shard.lock().reset_stats();
        }
        self.swizzled_hops.store(0, Relaxed);
        self.unswizzled_hops.store(0, Relaxed);
    }

    /// One reference hop from `from` along `attr`. At most one shard
    /// lock is held at any instant: the source shard is released before
    /// the target shard (possibly the same one) is probed, and hint
    /// validation tolerates any interleaved eviction — a stale hint
    /// simply falls back to the OID-map path.
    pub(crate) fn hop(&self, from: Oid, attr: u32) -> Hop {
        let sidx = self.shard_idx(from);
        let (hint, target) = {
            let c = self.shards[sidx].lock();
            let Some(slot) = c.slot_of(from) else { return Hop::Absent };
            (c.hint(slot, attr), c.ref_target(slot, attr))
        };
        if let Some(h) = hint {
            if let Some(shard) = self.shards.get(h.shard as usize) {
                if shard.lock().validate(h.slot as usize, h.expected) {
                    self.swizzled_hops.fetch_add(1, Relaxed);
                    return Hop::To(h.expected, true);
                }
            }
        }
        let Some(target) = target else { return Hop::NotRef };
        self.unswizzled_hops.fetch_add(1, Relaxed);
        let tidx = self.shard_idx(target);
        let target_slot = self.shards[tidx].lock().resident_slot(target);
        match target_slot {
            Some(tslot) => {
                let mut c = self.shards[sidx].lock();
                if let Some(slot) = c.slot_of(from) {
                    c.set_hint(
                        slot,
                        attr,
                        SwizzleHint { shard: tidx as u32, slot: tslot as u32, expected: target },
                    );
                }
                Hop::To(target, false)
            }
            None => Hop::Miss(target),
        }
    }

    /// Record that `attr` of `from` resolves to `target` (after the
    /// caller faulted the target in). Two sequential single-shard
    /// sections; never both locks at once.
    pub(crate) fn note(&self, from: Oid, attr: u32, target: Oid) {
        let tidx = self.shard_idx(target);
        let Some(tslot) = self.shards[tidx].lock().slot_of(target) else { return };
        let mut c = self.shard(from).lock();
        if let Some(slot) = c.slot_of(from) {
            c.set_hint(
                slot,
                attr,
                SwizzleHint { shard: tidx as u32, slot: tslot as u32, expected: target },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_types::ClassId;

    fn rec(class: u16, serial: u64, refs: &[(u32, Oid)]) -> ObjectRecord {
        ObjectRecord::new(
            Oid::new(ClassId(class), serial),
            0,
            refs.iter().map(|(a, o)| (*a, Value::Ref(*o))).collect(),
        )
    }

    #[test]
    fn admit_lookup_invalidate() {
        let mut cache = ObjectCache::new(4, true);
        let r = rec(1, 1, &[]);
        let oid = r.oid;
        let slot = cache.admit(r);
        assert_eq!(cache.lookup(oid), Some(slot));
        assert_eq!(cache.stats().hits, 1);
        cache.invalidate(oid);
        assert_eq!(cache.lookup(oid), None);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut cache = ObjectCache::new(2, true);
        let a = rec(1, 1, &[]);
        let b = rec(1, 2, &[]);
        let c = rec(1, 3, &[]);
        let (ao, bo, co) = (a.oid, b.oid, c.oid);
        cache.admit(a);
        cache.admit(b);
        cache.lookup(ao); // a more recent than b
        cache.admit(c); // evicts b
        assert!(cache.contains(ao));
        assert!(!cache.contains(bo));
        assert!(cache.contains(co));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn swizzled_traversal_fast_path() {
        let mut cache = ObjectCache::new(8, true);
        let b = rec(1, 2, &[]);
        let b_oid = b.oid;
        let a = rec(1, 1, &[(7, b_oid)]);
        let a_slot = cache.admit(a);
        let b_slot = cache.admit(b);
        // First hop: unswizzled (map lookup), records the hint.
        assert_eq!(cache.traverse_ref(a_slot, 7), Some(Ok(b_slot)));
        assert_eq!(cache.stats().unswizzled_hops, 1);
        // Second hop: swizzled.
        assert_eq!(cache.traverse_ref(a_slot, 7), Some(Ok(b_slot)));
        assert_eq!(cache.stats().swizzled_hops, 1);
    }

    #[test]
    fn swizzle_invalidated_by_eviction_and_slot_reuse() {
        let mut cache = ObjectCache::new(2, true);
        let b = rec(1, 2, &[]);
        let b_oid = b.oid;
        let a = rec(1, 1, &[(7, b_oid)]);
        let a_slot = cache.admit(a);
        let b_slot = cache.admit(b);
        assert_eq!(cache.traverse_ref(a_slot, 7), Some(Ok(b_slot)));
        assert_eq!(cache.traverse_ref(a_slot, 7), Some(Ok(b_slot))); // swizzled now
        // Touch a so b is LRU, then admit c reusing b's slot.
        cache.lookup(Oid::new(ClassId(1), 1));
        let c = rec(1, 3, &[]);
        cache.admit(c);
        // The stale swizzle must not resolve to c.
        match cache.traverse_ref(a_slot, 7) {
            Some(Err(oid)) => assert_eq!(oid, b_oid, "fault-in requested for b"),
            other => panic!("stale swizzle followed: {other:?}"),
        }
    }

    #[test]
    fn unswizzled_mode_never_uses_slots() {
        let mut cache = ObjectCache::new(8, false);
        let b = rec(1, 2, &[]);
        let a = rec(1, 1, &[(7, b.oid)]);
        let a_slot = cache.admit(a);
        let _b_slot = cache.admit(b);
        for _ in 0..3 {
            assert!(matches!(cache.traverse_ref(a_slot, 7), Some(Ok(_))));
        }
        assert_eq!(cache.stats().swizzled_hops, 0);
        assert_eq!(cache.stats().unswizzled_hops, 3);
    }

    #[test]
    fn traverse_non_ref_attr_is_none() {
        let mut cache = ObjectCache::new(4, true);
        let mut r = rec(1, 1, &[]);
        r.set(3, Value::Int(5));
        let slot = cache.admit(r);
        assert!(cache.traverse_ref(slot, 3).is_none(), "Int is not traversable");
        assert!(cache.traverse_ref(slot, 99).is_none(), "missing attr");
    }

    #[test]
    fn update_record_clears_swizzles() {
        let mut cache = ObjectCache::new(8, true);
        let b = rec(1, 2, &[]);
        let c = rec(1, 3, &[]);
        let b_oid = b.oid;
        let c_oid = c.oid;
        let a = rec(1, 1, &[(7, b_oid)]);
        let a_slot = cache.admit(a);
        let _ = cache.admit(b);
        let c_slot = cache.admit(c);
        let _ = cache.traverse_ref(a_slot, 7); // swizzle a.7 -> b
        // Redirect a.7 to c.
        let new_a = rec(1, 1, &[(7, c_oid)]);
        cache.update_record(a_slot, new_a);
        assert_eq!(cache.traverse_ref(a_slot, 7), Some(Ok(c_slot)));
    }

    #[test]
    fn admit_same_oid_refreshes() {
        let mut cache = ObjectCache::new(4, true);
        let mut r = rec(1, 1, &[]);
        r.set(3, Value::Int(1));
        let slot1 = cache.admit(r.clone());
        r.set(3, Value::Int(2));
        let slot2 = cache.admit(r);
        assert_eq!(slot1, slot2);
        assert_eq!(cache.attr(slot1, 3), Some(Value::Int(2)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn sharded_hop_crosses_shards_swizzled() {
        // Capacity ≥ SINGLE_SHARD_BELOW so the cache actually shards.
        let cache = ShardedCache::new(4096, true);
        // A chain long enough to guarantee cross-shard hops.
        let mut prev: Option<Oid> = None;
        let mut oids = Vec::new();
        for serial in 1..=20u64 {
            let r = match prev {
                Some(p) => rec(1, serial, &[(7, p)]),
                None => rec(1, serial, &[]),
            };
            prev = Some(r.oid);
            oids.push(r.oid);
            cache.admit(r);
        }
        // Walk the chain backwards: 19 hops, all unswizzled first pass.
        for w in oids.windows(2) {
            assert_eq!(cache.hop(w[1], 7), Hop::To(w[0], false));
        }
        assert_eq!(cache.stats().unswizzled_hops, 19);
        // Second pass: every hop swizzled, including cross-shard ones.
        for w in oids.windows(2) {
            assert_eq!(cache.hop(w[1], 7), Hop::To(w[0], true));
        }
        assert_eq!(cache.stats().swizzled_hops, 19);
    }

    #[test]
    fn sharded_hop_miss_then_note() {
        let cache = ShardedCache::new(4096, true);
        let b = rec(1, 2, &[]);
        let b_oid = b.oid;
        let a = rec(1, 1, &[(7, b_oid)]);
        let a_oid = a.oid;
        cache.admit(a);
        assert_eq!(cache.hop(a_oid, 7), Hop::Miss(b_oid), "target not resident");
        cache.admit(b);
        cache.note(a_oid, 7, b_oid);
        assert_eq!(cache.hop(a_oid, 7), Hop::To(b_oid, true), "noted hint is hot");
        assert_eq!(cache.hop(Oid::new(ClassId(9), 99), 7), Hop::Absent);
        assert_eq!(cache.hop(a_oid, 99), Hop::NotRef);
    }

    #[test]
    fn sharded_small_capacity_single_shard_lru() {
        let cache = ShardedCache::new(2, true);
        let (a, b, c) = (rec(1, 1, &[]), rec(1, 2, &[]), rec(1, 3, &[]));
        let (ao, bo, co) = (a.oid, b.oid, c.oid);
        cache.admit(a);
        cache.admit(b);
        let _ = cache.get(ao); // a more recent than b
        cache.admit(c); // evicts b — exact global LRU, single shard
        assert!(cache.contains(ao));
        assert!(!cache.contains(bo));
        assert!(cache.contains(co));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }
}
