//! The unified observability layer: `Database::stats()` snapshots,
//! `DbConfig::builder()` validation, counter coherence under
//! concurrency, and the deprecated accessor quartet's delegation.

use orion_core::{
    AttrSpec, Database, DbConfig, DbError, Domain, LockingStrategy, PrimitiveType, Value,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn int() -> Domain {
    Domain::Primitive(PrimitiveType::Int)
}

fn str_dom() -> Domain {
    Domain::Primitive(PrimitiveType::Str)
}

/// Build a small Figure-1 style schema: `n` vehicles split over two
/// subclasses, manufactured by two companies.
fn build_schema(db: &Database, n: u64) {
    let company = db
        .create_class("Company", &[], vec![AttrSpec::new("location", str_dom())])
        .unwrap();
    db.create_class(
        "Vehicle",
        &[],
        vec![
            AttrSpec::new("weight", int()),
            AttrSpec::new("manufacturer", Domain::Class(company)),
        ],
    )
    .unwrap();
    db.create_class("Automobile", &["Vehicle"], vec![]).unwrap();
    db.create_class("Truck", &["Vehicle"], vec![]).unwrap();

    let tx = db.begin();
    let detroit = db
        .create_object(&tx, "Company", vec![("location", Value::str("Detroit"))])
        .unwrap();
    let austin = db
        .create_object(&tx, "Company", vec![("location", Value::str("Austin"))])
        .unwrap();
    for i in 0..n {
        let class = if i % 2 == 0 { "Truck" } else { "Automobile" };
        let manu = if i % 3 == 0 { detroit } else { austin };
        db.create_object(
            &tx,
            class,
            vec![("weight", Value::Int(i as i64)), ("manufacturer", Value::Ref(manu))],
        )
        .unwrap();
    }
    db.commit(tx).unwrap();
}

#[test]
fn builder_rejects_invalid_settings() {
    let err = DbConfig::builder().buffer_pages(0).build().unwrap_err();
    assert!(matches!(err, DbError::Config(_)), "zero buffer pool rejected: {err}");
    assert!(err.to_string().contains("buffer_pages"));

    let err = DbConfig::builder().cache_objects(0).build().unwrap_err();
    assert!(matches!(err, DbError::Config(_)), "zero cache rejected: {err}");

    let err = DbConfig::builder().lock_timeout(Duration::ZERO).build().unwrap_err();
    assert!(matches!(err, DbError::Config(_)), "zero lock timeout rejected: {err}");

    // try_with_config runs the same validation.
    let bad = DbConfig { buffer_pages: 0, ..DbConfig::default() };
    assert!(matches!(Database::try_with_config(bad), Err(DbError::Config(_))));

    // A valid builder chain produces a working database.
    let config = DbConfig::builder()
        .buffer_pages(64)
        .cache_objects(512)
        .swizzling(false)
        .locking(LockingStrategy::Granular)
        .clustering(false)
        .lock_timeout(Duration::from_millis(250))
        .query_threads(2)
        .build()
        .unwrap();
    assert_eq!(config.buffer_pages, 64);
    assert_eq!(config.query_threads, 2);
    let db = Database::try_with_config(config).unwrap();
    build_schema(&db, 4);
    let tx = db.begin();
    assert_eq!(db.query(&tx, "select count(*) from Vehicle* v").unwrap().rows[0][0], Value::Int(4));
    db.commit(tx).unwrap();
}

#[test]
fn stats_nonzero_after_mixed_workload() {
    // Tiny pool so the workload spills: evictions and writebacks too.
    let config =
        DbConfig::builder().buffer_pages(4).cache_objects(64).query_threads(4).build().unwrap();
    let db = Database::try_with_config(config).unwrap();
    // ~800 records span well over 4 pages, so the pool must evict.
    build_schema(&db, 800);

    // Some updates, a delete, and parallel queries on top of the DML
    // performed by build_schema.
    let tx = db.begin();
    let trucks = db.query(&tx, "select v from Truck v where v.weight < 20").unwrap();
    for &oid in &trucks.oids[..5] {
        db.set(&tx, oid, "weight", Value::Int(1000)).unwrap();
    }
    db.delete_object(&tx, trucks.oids[5]).unwrap();
    db.query(&tx, "select v from Vehicle* v where v.weight > 100").unwrap();
    db.query(&tx, "select v.manufacturer.location from Vehicle* v where v.weight > 250").unwrap();
    db.commit(tx).unwrap();

    let stats = db.stats();
    // Acceptance: nonzero buffer-pool, WAL, lock, and executor counters.
    assert!(stats.pool.hits > 0, "pool hits: {stats:?}");
    assert!(stats.pool.misses > 0, "pool misses (16-frame pool must spill)");
    assert!(stats.pool.evictions > 0, "pool evictions");
    assert!(stats.wal.appends > 0, "wal appends");
    assert!(stats.wal.flushes > 0, "commit flushed the log");
    assert!(stats.wal.flushed_bytes > 0, "flushed bytes");
    assert_eq!(stats.wal.flush_latency.count, stats.wal.flushes, "every flush timed");
    assert!(stats.locks.acquisitions > 0, "lock acquisitions");
    assert!(stats.exec.queries >= 3, "executor ran the queries: {:?}", stats.exec);
    assert!(stats.exec.rows_scanned > 0, "candidates counted");
    assert!(stats.exec.rows_matched > 0, "matches counted");
    assert!(stats.exec.scan_picks >= 3, "extent scans picked (no indexes defined)");
    assert!(stats.fetches > 0, "objects decoded from storage");

    // The Prometheus rendering carries the same values.
    let text = stats.render_prometheus();
    assert!(text.contains(&format!("orion_wal_appends_total {}", stats.wal.appends)));
    assert!(text.contains(&format!("orion_lock_acquisitions_total {}", stats.locks.acquisitions)));
    assert!(text.contains("orion_wal_flush_latency_seconds_bucket"));
    assert!(text.contains("# TYPE orion_exec_queries_total counter"));

    // reset_metrics zeroes every layer.
    db.reset_metrics();
    let zeroed = db.stats();
    assert_eq!(zeroed.pool.hits, 0);
    assert_eq!(zeroed.wal.appends, 0);
    assert_eq!(zeroed.locks.acquisitions, 0);
    assert_eq!(zeroed.exec.queries, 0);
    assert_eq!(zeroed.fetches, 0);
}

#[test]
fn method_dispatches_are_counted() {
    let db = Database::open_in_memory();
    build_schema(&db, 6);
    db.define_method(
        "Vehicle",
        "describe",
        0,
        Arc::new(|db, tx, receiver, _args| {
            let w = db.get(tx, receiver, "weight")?;
            Ok(Value::Str(format!("vehicle weighing {w}")))
        }),
    )
    .unwrap();
    let tx = db.begin();
    let v = db.query(&tx, "select v from Truck v").unwrap().oids[0];
    for _ in 0..4 {
        db.call(&tx, v, "describe", &[]).unwrap();
    }
    db.commit(tx).unwrap();
    assert_eq!(db.stats().method_calls, 4);
}

#[test]
fn counters_stay_monotonic_under_concurrent_readers_and_writer() {
    let config = DbConfig::builder().query_threads(2).build().unwrap();
    let db = Arc::new(Database::try_with_config(config).unwrap());
    build_schema(&db, 200);

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Writer: a stream of small committed transactions.
        s.spawn(|| {
            for i in 0..40u64 {
                let tx = db.begin();
                db.create_object(
                    &tx,
                    "Automobile",
                    vec![("weight", Value::Int(10_000 + i as i64))],
                )
                .unwrap();
                db.commit(tx).unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
        // Query readers keep the executor busy.
        for _ in 0..2 {
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let tx = db.begin();
                    db.query(&tx, "select count(*) from Vehicle* v where v.weight >= 0").unwrap();
                    db.commit(tx).unwrap();
                }
            });
        }
        // Stats readers: snapshots mid-workload must never deadlock and
        // the monotonic counters must never move backwards.
        for _ in 0..2 {
            s.spawn(|| {
                let mut last = db.stats();
                while !stop.load(Ordering::Relaxed) {
                    let now = db.stats();
                    assert!(now.wal.appends >= last.wal.appends, "wal.appends went backwards");
                    assert!(
                        now.locks.acquisitions >= last.locks.acquisitions,
                        "locks.acquisitions went backwards"
                    );
                    assert!(now.exec.queries >= last.exec.queries, "exec.queries went backwards");
                    assert!(now.fetches >= last.fetches, "fetches went backwards");
                    assert!(
                        now.exec.memo_lookups >= now.exec.memo_hits,
                        "hits cannot exceed lookups"
                    );
                    last = now;
                }
            });
        }
    });

    // The writer's 40 inserts all landed and were all logged.
    let tx = db.begin();
    let n = db.query(&tx, "select count(*) from Vehicle* v where v.weight >= 10000").unwrap();
    assert_eq!(n.rows[0][0], Value::Int(40));
    db.commit(tx).unwrap();
    assert!(db.stats().wal.appends >= 40, "every insert was logged");
}

#[test]
fn reset_metrics_zeroes_every_counter() {
    let db = Database::open_in_memory();
    build_schema(&db, 20);
    let tx = db.begin();
    db.query(&tx, "select v from Vehicle* v where v.weight > 3").unwrap();
    db.commit(tx).unwrap();

    assert!(db.stats().wal.appends > 0, "the workload was logged");
    db.reset_metrics();
    assert_eq!(db.stats().fetches, 0);
    assert_eq!(db.stats().wal.appends, 0);
    assert_eq!(db.stats().wal.fsyncs, 0);
    assert_eq!(db.stats().wal.logical_records, 0);
    assert_eq!(db.stats().wal.group_commit_batch_size.count, 0);
}
