//! Focused tests of the deductive-rule engine beyond transitive closure:
//! constants, unary class predicates with subclass semantics, stacked
//! IDB predicates, and evaluation-order independence.

use orion_core::{
    var, AttrSpec, Database, Domain, PrimitiveType, Rule, RuleAtom, Term, Value,
};

fn db_with_people() -> (Database, Vec<orion_core::Oid>) {
    let db = Database::open_in_memory();
    db.create_class(
        "Person",
        &[],
        vec![
            AttrSpec::new("pname", Domain::Primitive(PrimitiveType::Str)),
            AttrSpec::new("age", Domain::Primitive(PrimitiveType::Int)),
        ],
    )
    .unwrap();
    let person = db.with_catalog(|c| c.class_id("Person")).unwrap();
    db.create_class("Employee", &["Person"], vec![]).unwrap();
    db.evolve(
        orion_core::SchemaChange::AddAttribute {
            class: person,
            spec: AttrSpec::new("parent", Domain::Class(person)),
        },
        orion_core::Migration::Lazy,
    )
    .unwrap();

    let tx = db.begin();
    // won (60) -> jay (30) -> kid (5); jay is an Employee.
    let won = db
        .create_object(&tx, "Person", vec![("pname", Value::str("won")), ("age", Value::Int(60))])
        .unwrap();
    let jay = db
        .create_object(
            &tx,
            "Employee",
            vec![("pname", Value::str("jay")), ("age", Value::Int(30))],
        )
        .unwrap();
    let kid = db
        .create_object(&tx, "Person", vec![("pname", Value::str("kid")), ("age", Value::Int(5))])
        .unwrap();
    db.set(&tx, jay, "parent", Value::Ref(won)).unwrap();
    db.set(&tx, kid, "parent", Value::Ref(jay)).unwrap();
    db.commit(tx).unwrap();
    (db, vec![won, jay, kid])
}

#[test]
fn constants_in_rule_bodies_filter() {
    let (db, oids) = db_with_people();
    // named_won(X) :- pname(X, "won").
    db.add_rule(Rule {
        head: RuleAtom::new("named_won", vec![var("X")]),
        body: vec![RuleAtom::new(
            "pname",
            vec![var("X"), Term::Const(Value::str("won"))],
        )],
    })
    .unwrap();
    let r = db.infer("named_won", true).unwrap();
    assert_eq!(r.tuples, vec![vec![Value::Ref(oids[0])]]);
}

#[test]
fn class_predicates_are_subclass_aware() {
    let (db, oids) = db_with_people();
    // people(X) :- Person(X).  Employees are Persons.
    db.add_rule(Rule {
        head: RuleAtom::new("people", vec![var("X")]),
        body: vec![RuleAtom::new("Person", vec![var("X")])],
    })
    .unwrap();
    db.add_rule(Rule {
        head: RuleAtom::new("staff", vec![var("X")]),
        body: vec![RuleAtom::new("Employee", vec![var("X")])],
    })
    .unwrap();
    let people = db.infer("people", true).unwrap();
    assert_eq!(people.tuples.len(), 3);
    let staff = db.infer("staff", true).unwrap();
    assert_eq!(staff.tuples, vec![vec![Value::Ref(oids[1])]]);
}

#[test]
fn stacked_idb_predicates() {
    let (db, oids) = db_with_people();
    // ancestor closure, then grandparent via the closure.
    db.add_rule(Rule {
        head: RuleAtom::new("ancestor", vec![var("X"), var("Y")]),
        body: vec![RuleAtom::new("parent", vec![var("X"), var("Y")])],
    })
    .unwrap();
    db.add_rule(Rule {
        head: RuleAtom::new("ancestor", vec![var("X"), var("Z")]),
        body: vec![
            RuleAtom::new("ancestor", vec![var("X"), var("Y")]),
            RuleAtom::new("parent", vec![var("Y"), var("Z")]),
        ],
    })
    .unwrap();
    // eldest(X) :- ancestor(Y, X), Person(X) with X bound to roots only —
    // express "kid descends from won" membership instead.
    db.add_rule(Rule {
        head: RuleAtom::new("descends_from_won", vec![var("X")]),
        body: vec![
            RuleAtom::new("ancestor", vec![var("X"), var("W")]),
            RuleAtom::new("pname", vec![var("W"), Term::Const(Value::str("won"))]),
        ],
    })
    .unwrap();
    let r = db.infer("descends_from_won", true).unwrap();
    let mut got: Vec<Value> = r.tuples.into_iter().map(|mut t| t.remove(0)).collect();
    got.sort_by(|a, b| a.cmp_total(b));
    let mut want = vec![Value::Ref(oids[1]), Value::Ref(oids[2])];
    want.sort_by(|a, b| a.cmp_total(b));
    assert_eq!(got, want, "jay and kid descend from won");
    // ancestor itself: jay->won, kid->jay, kid->won.
    let anc = db.infer("ancestor", true).unwrap();
    assert_eq!(anc.tuples.len(), 3);
}

#[test]
fn seminaive_and_naive_always_agree() {
    let (db, _) = db_with_people();
    db.add_rule(Rule {
        head: RuleAtom::new("ancestor", vec![var("X"), var("Y")]),
        body: vec![RuleAtom::new("parent", vec![var("X"), var("Y")])],
    })
    .unwrap();
    db.add_rule(Rule {
        head: RuleAtom::new("ancestor", vec![var("X"), var("Z")]),
        body: vec![
            RuleAtom::new("ancestor", vec![var("X"), var("Y")]),
            RuleAtom::new("ancestor", vec![var("Y"), var("Z")]),
        ],
    })
    .unwrap();
    let a = db.infer("ancestor", true).unwrap();
    let b = db.infer("ancestor", false).unwrap();
    assert_eq!(a.tuples, b.tuples, "both evaluation modes reach the same fixpoint");
}

#[test]
fn unknown_predicate_infers_empty() {
    let (db, _) = db_with_people();
    let r = db.infer("nothing_defined", true).unwrap();
    assert!(r.tuples.is_empty());
}

#[test]
fn facts_reflect_current_database_state() {
    let (db, oids) = db_with_people();
    db.add_rule(Rule {
        head: RuleAtom::new("adults", vec![var("X"), var("A")]),
        body: vec![RuleAtom::new("age", vec![var("X"), var("A")])],
    })
    .unwrap();
    assert_eq!(db.infer("adults", true).unwrap().tuples.len(), 3);
    // Delete one person; the EDB is rebuilt per inference.
    let tx = db.begin();
    db.delete_object(&tx, oids[2]).unwrap();
    db.commit(tx).unwrap();
    assert_eq!(db.infer("adults", true).unwrap().tuples.len(), 2);
}
