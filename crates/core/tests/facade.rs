//! End-to-end tests of the `Database` facade: the paper's feature list,
//! exercised one capability at a time.

use orion_core::{
    var, AccessPath, AttrSpec, AuthAction, AuthTarget, Database, DbConfig, DbError, Domain,
    IndexKind, Migration, NotificationKind, Oid, PrimitiveType, Rule, RuleAtom, SchemaChange,
    Term, Value, VersionStatus,
};
use std::sync::Arc;

fn int() -> Domain {
    Domain::Primitive(PrimitiveType::Int)
}
fn string() -> Domain {
    Domain::Primitive(PrimitiveType::Str)
}

/// Figure 1 of the paper: the Vehicle/Company schema.
fn figure1(db: &Database) {
    db.create_class(
        "Company",
        &[],
        vec![AttrSpec::new("name", string()), AttrSpec::new("location", string())],
    )
    .unwrap();
    let company = db.with_catalog(|c| c.class_id("Company")).unwrap();
    db.create_class(
        "Vehicle",
        &[],
        vec![
            AttrSpec::new("weight", int()),
            AttrSpec::new("manufacturer", Domain::Class(company)),
        ],
    )
    .unwrap();
    db.create_class("Automobile", &["Vehicle"], vec![AttrSpec::new("drivetrain", string())])
        .unwrap();
    db.create_class("Truck", &["Vehicle"], vec![AttrSpec::new("payload", int())]).unwrap();
}

/// Populate: n vehicles alternating Automobile/Truck over two companies.
fn populate(db: &Database, n: u64) -> (Oid, Oid) {
    let tx = db.begin();
    let detroit = db
        .create_object(
            &tx,
            "Company",
            vec![("name", Value::str("MotorCo")), ("location", Value::str("Detroit"))],
        )
        .unwrap();
    let austin = db
        .create_object(
            &tx,
            "Company",
            vec![("name", Value::str("ChipCo")), ("location", Value::str("Austin"))],
        )
        .unwrap();
    for i in 1..=n {
        let class = if i % 2 == 0 { "Truck" } else { "Automobile" };
        let manu = if i % 2 == 0 { detroit } else { austin };
        db.create_object(
            &tx,
            class,
            vec![("weight", Value::Int(1000 * i as i64)), ("manufacturer", Value::Ref(manu))],
        )
        .unwrap();
    }
    db.commit(tx).unwrap();
    (detroit, austin)
}

#[test]
fn crud_and_defaults() {
    let db = Database::open_in_memory();
    db.create_class(
        "Point",
        &[],
        vec![
            AttrSpec::new("x", int()).with_default(Value::Int(0)),
            AttrSpec::new("y", int()),
        ],
    )
    .unwrap();
    let tx = db.begin();
    let p = db.create_object(&tx, "Point", vec![("y", Value::Int(5))]).unwrap();
    assert_eq!(db.get(&tx, p, "x").unwrap(), Value::Int(0), "default applies");
    assert_eq!(db.get(&tx, p, "y").unwrap(), Value::Int(5));
    db.set(&tx, p, "x", Value::Int(9)).unwrap();
    assert_eq!(db.get(&tx, p, "x").unwrap(), Value::Int(9));
    assert!(db.get(&tx, p, "z").is_err());
    assert!(db.set(&tx, p, "x", Value::str("nope")).is_err(), "domain enforced");
    db.delete_object(&tx, p).unwrap();
    assert!(db.get(&tx, p, "x").is_err());
    db.commit(tx).unwrap();
}

#[test]
fn figure1_query_through_facade() {
    let db = Database::open_in_memory();
    figure1(&db);
    populate(&db, 8);
    let tx = db.begin();
    let r = db
        .query(
            &tx,
            "select v from Vehicle* v where v.weight > 7500 \
             and v.manufacturer.location = \"Detroit\"",
        )
        .unwrap();
    assert_eq!(r.len(), 1);
    let weight = db.get(&tx, r.oids[0], "weight").unwrap();
    assert_eq!(weight, Value::Int(8000));
    db.commit(tx).unwrap();
}

#[test]
fn inherited_attributes_read_through_subclass() {
    let db = Database::open_in_memory();
    figure1(&db);
    let tx = db.begin();
    let t = db
        .create_object(&tx, "Truck", vec![("weight", Value::Int(1)), ("payload", Value::Int(2))])
        .unwrap();
    assert_eq!(db.get(&tx, t, "weight").unwrap(), Value::Int(1), "inherited");
    assert_eq!(db.get(&tx, t, "payload").unwrap(), Value::Int(2), "local");
    db.commit(tx).unwrap();
}

#[test]
fn rollback_undoes_everything_including_indexes() {
    let db = Database::open_in_memory();
    figure1(&db);
    populate(&db, 4);
    db.create_index("w", IndexKind::ClassHierarchy, "Vehicle", &["weight"]).unwrap();
    assert_eq!(db.index_stats("w").unwrap().0, 4);

    let tx = db.begin();
    let v = db.create_object(&tx, "Truck", vec![("weight", Value::Int(77))]).unwrap();
    db.set(&tx, v, "weight", Value::Int(88)).unwrap();
    db.rollback(tx).unwrap();

    assert!(!db.exists(v));
    assert_eq!(db.index_stats("w").unwrap().0, 4, "index entries rolled back");
    let tx = db.begin();
    let r = db.query(&tx, "select count(*) from Vehicle* v").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(4));
    db.commit(tx).unwrap();
}

#[test]
fn crash_recovery_preserves_committed_objects() {
    let db = Database::open_in_memory();
    figure1(&db);
    populate(&db, 6);
    db.create_index("w", IndexKind::ClassHierarchy, "Vehicle", &["weight"]).unwrap();

    // An uncommitted transaction in flight at the crash.
    let tx = db.begin();
    let doomed = db.create_object(&tx, "Truck", vec![("weight", Value::Int(1))]).unwrap();
    db.engine().wal().flush().unwrap();
    std::mem::forget(tx); // simulate an in-flight txn at crash time
    db.crash_and_recover().unwrap();

    assert!(!db.exists(doomed), "loser undone by recovery");
    let tx = db.begin();
    let r = db.query(&tx, "select count(*) from Vehicle* v").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(6));
    // Indexes were rebuilt and still answer queries.
    let r = db.query(&tx, "select v from Vehicle* v where v.weight = 4000").unwrap();
    assert_eq!(r.len(), 1);
    // New OIDs do not collide with recovered ones.
    let fresh = db.create_object(&tx, "Truck", vec![("weight", Value::Int(2))]).unwrap();
    assert!(db.exists(fresh));
    db.commit(tx).unwrap();
}

#[test]
fn simple_index_follows_updates_and_deletes() {
    let db = Database::open_in_memory();
    figure1(&db);
    populate(&db, 4);
    db.create_index("w", IndexKind::ClassHierarchy, "Vehicle", &["weight"]).unwrap();
    let tx = db.begin();
    let hit = db.query(&tx, "select v from Vehicle* v where v.weight = 2000").unwrap();
    assert_eq!(hit.len(), 1);
    let target = hit.oids[0];
    db.set(&tx, target, "weight", Value::Int(2500)).unwrap();
    assert_eq!(db.query(&tx, "select v from Vehicle* v where v.weight = 2000").unwrap().len(), 0);
    assert_eq!(db.query(&tx, "select v from Vehicle* v where v.weight = 2500").unwrap().len(), 1);
    db.delete_object(&tx, target).unwrap();
    assert_eq!(db.query(&tx, "select v from Vehicle* v where v.weight = 2500").unwrap().len(), 0);
    db.commit(tx).unwrap();
}

#[test]
fn nested_index_maintained_through_intermediate_update() {
    let db = Database::open_in_memory();
    figure1(&db);
    let (detroit, austin) = populate(&db, 8);
    db.create_index("loc", IndexKind::Nested, "Vehicle", &["manufacturer", "location"]).unwrap();

    let tx = db.begin();
    let q = "select count(*) from Vehicle* v where v.manufacturer.location = \"Detroit\"";
    assert_eq!(db.query(&tx, q).unwrap().rows[0][0], Value::Int(4));
    // The optimizer should pick the nested index.
    let plan = db
        .explain(&tx, "select v from Vehicle* v where v.manufacturer.location = \"Detroit\"")
        .unwrap();
    assert!(
        !matches!(plan.access, AccessPath::Scan),
        "expected nested-index plan, got: {plan}"
    );

    // Update the INTERMEDIATE object: the company moves. Every vehicle
    // keyed through it must re-key.
    db.set(&tx, detroit, "location", Value::str("Flint")).unwrap();
    assert_eq!(db.query(&tx, q).unwrap().rows[0][0], Value::Int(0));
    let q2 = "select count(*) from Vehicle* v where v.manufacturer.location = \"Flint\"";
    assert_eq!(db.query(&tx, q2).unwrap().rows[0][0], Value::Int(4));

    // Re-pointing a vehicle's manufacturer re-keys just that root.
    let trucks = db.query(&tx, "select v from Truck v order by v.weight asc").unwrap();
    db.set(&tx, trucks.oids[0], "manufacturer", Value::Ref(austin)).unwrap();
    assert_eq!(db.query(&tx, q2).unwrap().rows[0][0], Value::Int(3));
    db.commit(tx).unwrap();
}

#[test]
fn late_binding_dispatch_and_override() {
    let db = Database::open_in_memory();
    figure1(&db);
    db.define_method(
        "Vehicle",
        "describe",
        0,
        Arc::new(|db, tx, receiver, _args| {
            let w = db.get(tx, receiver, "weight")?;
            Ok(Value::Str(format!("vehicle weighing {w}")))
        }),
    )
    .unwrap();
    db.define_method(
        "Truck",
        "describe",
        0,
        Arc::new(|db, tx, receiver, _args| {
            let p = db.get(tx, receiver, "payload")?;
            Ok(Value::Str(format!("truck hauling {p}")))
        }),
    )
    .unwrap();
    let tx = db.begin();
    let a = db.create_object(&tx, "Automobile", vec![("weight", Value::Int(900))]).unwrap();
    let t = db
        .create_object(&tx, "Truck", vec![("weight", Value::Int(5000)), ("payload", Value::Int(3))])
        .unwrap();
    // Automobile inherits Vehicle's method; Truck overrides.
    assert_eq!(db.call(&tx, a, "describe", &[]).unwrap(), Value::str("vehicle weighing 900"));
    assert_eq!(db.call(&tx, t, "describe", &[]).unwrap(), Value::str("truck hauling 3"));
    assert!(db.call(&tx, a, "fly", &[]).is_err());
    // Arity mismatch is a query error.
    assert!(db.call(&tx, a, "describe", &[Value::Int(1)]).is_err());
    db.commit(tx).unwrap();
}

#[test]
fn navigation_uses_swizzled_pointers_when_warm() {
    let db = Database::open_in_memory();
    figure1(&db);
    populate(&db, 2);
    let tx = db.begin();
    let v = db.query(&tx, "select v from Truck v").unwrap().oids[0];
    // First navigation faults objects in; repeatings hit swizzles.
    let c1 = db.navigate(&tx, v, &["manufacturer"]).unwrap();
    db.reset_metrics();
    for _ in 0..10 {
        assert_eq!(db.navigate(&tx, v, &["manufacturer"]).unwrap(), c1);
    }
    let stats = db.stats().cache;
    assert_eq!(stats.swizzled_hops, 10, "warm hops all swizzled: {stats:?}");
    assert_eq!(stats.unswizzled_hops, 0);
    db.commit(tx).unwrap();
}

#[test]
fn schema_evolution_lazy_and_eager() {
    let db = Database::open_in_memory();
    figure1(&db);
    populate(&db, 4);
    let vehicle = db.with_catalog(|c| c.class_id("Vehicle")).unwrap();
    // Lazy add: existing instances read the default on next touch.
    db.evolve(
        SchemaChange::AddAttribute {
            class: vehicle,
            spec: AttrSpec::new("color", string()).with_default(Value::str("black")),
        },
        Migration::Lazy,
    )
    .unwrap();
    let tx = db.begin();
    let v = db.query(&tx, "select v from Truck v").unwrap().oids[0];
    assert_eq!(db.get(&tx, v, "color").unwrap(), Value::str("black"));
    db.set(&tx, v, "color", Value::str("red")).unwrap();
    assert_eq!(db.get(&tx, v, "color").unwrap(), Value::str("red"));
    db.commit(tx).unwrap();

    // Eager drop: records are scrubbed now; queries no longer see it.
    db.evolve(
        SchemaChange::DropAttribute { class: vehicle, name: "color".into() },
        Migration::Eager,
    )
    .unwrap();
    let tx = db.begin();
    assert!(db.get(&tx, v, "color").is_err());
    assert!(db.query(&tx, "select v from Vehicle* v where v.color = \"red\"").is_err());
    db.commit(tx).unwrap();
}

#[test]
fn evolution_drops_dependent_indexes() {
    let db = Database::open_in_memory();
    figure1(&db);
    populate(&db, 4);
    db.create_index("w", IndexKind::ClassHierarchy, "Vehicle", &["weight"]).unwrap();
    let vehicle = db.with_catalog(|c| c.class_id("Vehicle")).unwrap();
    db.evolve(
        SchemaChange::DropAttribute { class: vehicle, name: "weight".into() },
        Migration::Lazy,
    )
    .unwrap();
    assert!(db.index_stats("w").is_none(), "index on dropped attribute removed");
}

#[test]
fn versions_lifecycle_and_notifications() {
    let db = Database::open_in_memory();
    db.create_class("Design", &[], vec![AttrSpec::new("rev", int())]).unwrap();
    let tx = db.begin();
    let (generic, v1) = db
        .create_versioned(&tx, "Design", vec![("rev", Value::Int(1))])
        .unwrap();
    db.subscribe(generic);

    // Generic reads forward to the default version.
    assert_eq!(db.get(&tx, generic, "rev").unwrap(), Value::Int(1));
    // Generic objects are not directly writable.
    assert!(matches!(
        db.set(&tx, generic, "rev", Value::Int(9)),
        Err(DbError::Version(_))
    ));

    // Derive, update the transient child, promote it.
    let v2 = db.derive_version(&tx, v1).unwrap();
    assert_eq!(db.get(&tx, v2, "rev").unwrap(), Value::Int(1), "copied");
    db.set(&tx, v2, "rev", Value::Int(2)).unwrap();
    assert_eq!(db.version_status(v2).unwrap(), VersionStatus::Transient);
    db.promote_version(&tx, v2).unwrap();
    assert_eq!(db.version_status(v2).unwrap(), VersionStatus::Working);
    assert!(matches!(db.set(&tx, v2, "rev", Value::Int(3)), Err(DbError::Version(_))),
        "working versions are immutable");
    assert!(db.promote_version(&tx, v2).is_err(), "double promote");

    // Late-binding generic reference: flip the default.
    db.set_default_version(&tx, generic, v2).unwrap();
    assert_eq!(db.get(&tx, generic, "rev").unwrap(), Value::Int(2));
    assert_eq!(db.default_version(generic).unwrap(), v2);
    assert_eq!(db.version_parent(v2).unwrap(), Some(v1));
    assert_eq!(db.versions_of(generic).unwrap(), vec![v1, v2]);

    let notes = db.poll_notifications(generic);
    let kinds: Vec<NotificationKind> = notes.iter().map(|n| n.kind).collect();
    assert!(kinds.contains(&NotificationKind::VersionDerived));
    assert!(kinds.contains(&NotificationKind::DefaultVersionChanged));
    db.commit(tx).unwrap();
}

#[test]
fn composite_parts_cluster_delete_and_exclusivity() {
    let db = Database::open_in_memory();
    db.create_class("Module", &[], vec![AttrSpec::new("name", string())]).unwrap();
    let module = db.with_catalog(|c| c.class_id("Module")).unwrap();
    db.create_class(
        "Assembly",
        &[],
        vec![
            AttrSpec::new("name", string()),
            AttrSpec::new("modules", Domain::set_of_class(module)).composite(),
        ],
    )
    .unwrap();
    let tx = db.begin();
    let asm = db.create_object(&tx, "Assembly", vec![("name", Value::str("engine"))]).unwrap();
    let m1 = db.create_part(&tx, asm, "modules", "Module", vec![("name", Value::str("block"))])
        .unwrap();
    let m2 = db.create_part(&tx, asm, "modules", "Module", vec![("name", Value::str("head"))])
        .unwrap();
    assert_eq!(db.parts_of(asm), {
        let mut v = vec![m1, m2];
        v.sort();
        v
    });
    assert_eq!(db.composite_parent(m1), Some(asm));

    // Exclusivity: another assembly cannot claim m1.
    let asm2 = db.create_object(&tx, "Assembly", vec![("name", Value::str("copy"))]).unwrap();
    let steal = db.set(&tx, asm2, "modules", Value::set(vec![Value::Ref(m1)]));
    assert!(matches!(steal, Err(DbError::Composite(_))));

    // Dependent delete: parts die with the root.
    db.delete_object(&tx, asm).unwrap();
    assert!(!db.exists(m1));
    assert!(!db.exists(m2));
    db.commit(tx).unwrap();
}

#[test]
fn composite_checkout_checkin_roundtrip() {
    let db = Database::open_in_memory();
    db.create_class("Part", &[], vec![AttrSpec::new("mass", int())]).unwrap();
    let part = db.with_catalog(|c| c.class_id("Part")).unwrap();
    db.create_class(
        "Widget",
        &[],
        vec![AttrSpec::new("core", Domain::Class(part)).composite()],
    )
    .unwrap();
    let tx = db.begin();
    let w = db.create_object(&tx, "Widget", vec![]).unwrap();
    let p = db.create_part(&tx, w, "core", "Part", vec![("mass", Value::Int(10))]).unwrap();
    db.commit(tx).unwrap();

    // Long-duration editing session: checkout, edit offline, checkin.
    let tx = db.begin();
    let mut workspace = db.checkout(&tx, w).unwrap();
    assert_eq!(workspace.len(), 2);
    for (name, value) in workspace.get_mut(&p).unwrap() {
        if name == "mass" {
            *value = Value::Int(42);
        }
    }
    db.checkin(&tx, workspace).unwrap();
    db.commit(tx).unwrap();

    let tx = db.begin();
    assert_eq!(db.get(&tx, p, "mass").unwrap(), Value::Int(42));
    db.commit(tx).unwrap();
}

#[test]
fn authorization_enforced_per_subject() {
    let config = DbConfig { authz_enabled: true, ..DbConfig::default() };
    let db = Database::with_config(config);
    figure1(&db);
    populate(&db, 2);
    let vehicle = db.with_catalog(|c| c.class_id("Vehicle")).unwrap();
    let truck = db.with_catalog(|c| c.class_id("Truck")).unwrap();
    let auto = db.with_catalog(|c| c.class_id("Automobile")).unwrap();
    let company = db.with_catalog(|c| c.class_id("Company")).unwrap();
    {
        let mut az = db_authz(&db);
        az(AuthAction::Read, AuthTarget::Class(vehicle));
        az(AuthAction::Read, AuthTarget::Class(truck));
        az(AuthAction::Read, AuthTarget::Class(auto));
        az(AuthAction::Read, AuthTarget::Class(company));
    }

    let tx = db.begin_as("reader");
    let trucks = db.query(&tx, "select v from Truck v").unwrap();
    assert_eq!(trucks.len(), 1);
    let t = trucks.oids[0];
    assert!(db.get(&tx, t, "weight").is_ok());
    assert!(matches!(
        db.set(&tx, t, "weight", Value::Int(1)),
        Err(DbError::AuthorizationDenied { .. })
    ));
    assert!(matches!(
        db.create_object(&tx, "Truck", vec![]),
        Err(DbError::AuthorizationDenied { .. })
    ));
    db.commit(tx).unwrap();

    // Subject-less transactions act with system authority.
    let tx = db.begin();
    assert!(db.set(&tx, t, "weight", Value::Int(1)).is_ok());
    db.commit(tx).unwrap();
}

/// Helper granting Read to the fixed subject "reader".
fn db_authz(db: &Database) -> impl FnMut(AuthAction, AuthTarget) + '_ {
    move |action, target| {
        db.grant("reader", action, target);
    }
}

#[test]
fn views_give_content_based_authorization() {
    let config = DbConfig { authz_enabled: true, ..DbConfig::default() };
    let db = Database::with_config(config);
    figure1(&db);
    populate(&db, 8);
    db.define_view(
        "HeavyVehicles",
        "select v from Vehicle* v where v.weight > 5000",
    )
    .unwrap();
    db.grant("guest", AuthAction::Read, AuthTarget::View("HeavyVehicles".into()));

    let tx = db.begin_as("guest");
    // Direct class access: denied.
    assert!(matches!(
        db.query(&tx, "select v from Vehicle* v"),
        Err(DbError::AuthorizationDenied { .. })
    ));
    // Through the view: only qualifying content, with extra predicates.
    let r = db.query(&tx, "select v from HeavyVehicles v").unwrap();
    assert_eq!(r.len(), 3);
    let r = db
        .query(&tx, "select v from HeavyVehicles v where v.manufacturer.location = \"Detroit\"")
        .unwrap();
    assert_eq!(r.len(), 2);
    db.commit(tx).unwrap();

    assert_eq!(db.view_names(), vec!["HeavyVehicles".to_string()]);
    assert!(db.define_view("HeavyVehicles", "select v from Truck v").is_err());
    db.drop_view("HeavyVehicles").unwrap();
    assert!(db.drop_view("HeavyVehicles").is_err());
}

#[test]
fn deductive_rules_transitive_closure_over_cyclic_graph() {
    let db = Database::open_in_memory();
    db.create_class("Node", &[], vec![AttrSpec::new("label", string())]).unwrap();
    let node = db.with_catalog(|c| c.class_id("Node")).unwrap();
    db.evolve(
        SchemaChange::AddAttribute {
            class: node,
            spec: AttrSpec::new("next", Domain::set_of_class(node)),
        },
        Migration::Lazy,
    )
    .unwrap();
    let tx = db.begin();
    // A cycle a -> b -> c -> a plus a tail c -> d.
    let a = db.create_object(&tx, "Node", vec![("label", Value::str("a"))]).unwrap();
    let b = db.create_object(&tx, "Node", vec![("label", Value::str("b"))]).unwrap();
    let c = db.create_object(&tx, "Node", vec![("label", Value::str("c"))]).unwrap();
    let d = db.create_object(&tx, "Node", vec![("label", Value::str("d"))]).unwrap();
    db.set(&tx, a, "next", Value::set(vec![Value::Ref(b)])).unwrap();
    db.set(&tx, b, "next", Value::set(vec![Value::Ref(c)])).unwrap();
    db.set(&tx, c, "next", Value::set(vec![Value::Ref(a), Value::Ref(d)])).unwrap();
    db.commit(tx).unwrap();

    // reachable(X, Y) :- next(X, Y).
    // reachable(X, Z) :- reachable(X, Y), next(Y, Z).
    db.add_rule(Rule {
        head: RuleAtom::new("reachable", vec![var("X"), var("Y")]),
        body: vec![RuleAtom::new("next", vec![var("X"), var("Y")])],
    })
    .unwrap();
    db.add_rule(Rule {
        head: RuleAtom::new("reachable", vec![var("X"), var("Z")]),
        body: vec![
            RuleAtom::new("reachable", vec![var("X"), var("Y")]),
            RuleAtom::new("next", vec![var("Y"), var("Z")]),
        ],
    })
    .unwrap();

    let semi = db.infer("reachable", true).unwrap();
    let naive = db.infer("reachable", false).unwrap();
    // Cycle members reach all four nodes; d reaches nothing: 3*4 = 12.
    assert_eq!(semi.tuples.len(), 12);
    assert_eq!(naive.tuples.len(), 12);
    assert!(
        semi.substitutions < naive.substitutions,
        "semi-naive does less join work ({} vs {})",
        semi.substitutions,
        naive.substitutions
    );
    // Membership check: a reaches d.
    assert!(semi
        .tuples
        .iter()
        .any(|t| t == &vec![Value::Ref(a), Value::Ref(d)]));
}

#[test]
fn rule_validation() {
    let db = Database::open_in_memory();
    assert!(db
        .add_rule(Rule {
            head: RuleAtom::new("p", vec![var("X")]),
            body: vec![],
        })
        .is_err());
    assert!(db
        .add_rule(Rule {
            head: RuleAtom::new("p", vec![var("X"), var("Y")]),
            body: vec![RuleAtom::new("q", vec![var("X")])],
        })
        .is_err(), "unbound head variable");
    assert!(db
        .add_rule(Rule {
            head: RuleAtom::new("p", vec![var("X"), var("Y"), Term::Const(Value::Int(1))]),
            body: vec![RuleAtom::new("q", vec![var("X"), var("Y")])],
        })
        .is_err(), "arity 3 rejected");
}

#[test]
fn foreign_adapter_federation() {
    use orion_core::{ForeignAdapter, ForeignClass, ForeignObject};
    use orion_types::DbResult;

    /// A toy foreign database: two employee rows.
    struct Payroll;
    impl ForeignAdapter for Payroll {
        fn name(&self) -> &str {
            "payroll"
        }
        fn classes(&self) -> Vec<ForeignClass> {
            vec![ForeignClass {
                name: "Employee".into(),
                attrs: vec![
                    ("ename".into(), PrimitiveType::Str),
                    ("salary".into(), PrimitiveType::Int),
                ],
            }]
        }
        fn scan(&self, class: &str) -> DbResult<Vec<ForeignObject>> {
            assert_eq!(class, "Employee");
            Ok(vec![
                ForeignObject {
                    key: 1,
                    attrs: vec![
                        ("ename".into(), Value::str("kim")),
                        ("salary".into(), Value::Int(90_000)),
                    ],
                },
                ForeignObject {
                    key: 2,
                    attrs: vec![
                        ("ename".into(), Value::str("banerjee")),
                        ("salary".into(), Value::Int(80_000)),
                    ],
                },
            ])
        }
    }

    let db = Database::open_in_memory();
    figure1(&db);
    populate(&db, 2);
    let attached = db.attach_foreign(Box::new(Payroll)).unwrap();
    assert_eq!(attached, vec!["Employee".to_string()]);
    assert_eq!(db.foreign_adapters(), vec!["payroll".to_string()]);

    // The same declarative language runs over foreign data.
    let tx = db.begin();
    let r = db.query(&tx, "select e.ename from Employee e where e.salary > 85000").unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("kim")]]);
    // Mixed: native classes still work in the same session.
    let r = db.query(&tx, "select count(*) from Vehicle* v").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2));
    // Foreign classes reject writes through orion.
    assert!(matches!(
        db.create_object(&tx, "Employee", vec![]),
        Err(DbError::Foreign(_))
    ));
    db.commit(tx).unwrap();
}

#[test]
fn lock_conflicts_between_transactions() {
    let config =
        DbConfig { lock_timeout: std::time::Duration::from_millis(80), ..DbConfig::default() };
    let db = Database::with_config(config);
    figure1(&db);
    populate(&db, 2);
    let tx1 = db.begin();
    let v = db.query(&tx1, "select v from Truck v").unwrap().oids[0];
    db.set(&tx1, v, "weight", Value::Int(123)).unwrap();
    // A second transaction cannot read the X-locked object.
    let tx2 = db.begin();
    let err = db.get(&tx2, v, "weight").unwrap_err();
    assert!(matches!(err, DbError::LockTimeout { .. }));
    // After commit, the lock clears.
    db.commit(tx1).unwrap();
    assert_eq!(db.get(&tx2, v, "weight").unwrap(), Value::Int(123));
    db.commit(tx2).unwrap();
}

#[test]
fn set_valued_attributes_queryable() {
    let db = Database::open_in_memory();
    db.create_class(
        "Doc",
        &[],
        vec![AttrSpec::new(
            "tags",
            Domain::SetOf(Box::new(Domain::Primitive(PrimitiveType::Str))),
        )],
    )
    .unwrap();
    let tx = db.begin();
    db.create_object(
        &tx,
        "Doc",
        vec![("tags", Value::set(vec![Value::str("red"), Value::str("fast")]))],
    )
    .unwrap();
    db.create_object(&tx, "Doc", vec![("tags", Value::set(vec![Value::str("blue")]))])
        .unwrap();
    let r = db.query(&tx, "select d from Doc d where d.tags contains \"red\"").unwrap();
    assert_eq!(r.len(), 1);
    db.commit(tx).unwrap();
}

#[test]
fn large_multimedia_blobs_chain_through_storage() {
    // §2.2: "long unstructured data (such as images, audio, and textual
    // documents)". A 100 KiB blob spans ~25 pages of overflow chain.
    let db = Database::open_in_memory();
    db.create_class(
        "Image",
        &[],
        vec![
            AttrSpec::new("name", string()),
            AttrSpec::new("bits", Domain::Primitive(PrimitiveType::Blob)),
        ],
    )
    .unwrap();
    let payload: Vec<u8> = (0..100 * 1024).map(|i| (i % 251) as u8).collect();
    let tx = db.begin();
    let img = db
        .create_object(
            &tx,
            "Image",
            vec![("name", Value::str("scan")), ("bits", Value::Blob(payload.clone()))],
        )
        .unwrap();
    assert_eq!(db.get(&tx, img, "bits").unwrap(), Value::Blob(payload.clone()));
    db.commit(tx).unwrap();

    // Survives a crash, remains queryable, and updates re-chain.
    db.crash_and_recover().unwrap();
    let tx = db.begin();
    assert_eq!(db.get(&tx, img, "bits").unwrap(), Value::Blob(payload));
    let smaller = vec![9u8; 10];
    db.set(&tx, img, "bits", Value::Blob(smaller.clone())).unwrap();
    assert_eq!(db.get(&tx, img, "bits").unwrap(), Value::Blob(smaller));
    let r = db.query(&tx, "select i from Image i where i.name = \"scan\"").unwrap();
    assert_eq!(r.oids, vec![img]);
    db.commit(tx).unwrap();
}

#[test]
fn blob_attributes_store_multimedia() {
    let db = Database::open_in_memory();
    db.create_class(
        "Image",
        &[],
        vec![
            AttrSpec::new("name", string()),
            AttrSpec::new("bits", Domain::Primitive(PrimitiveType::Blob)),
        ],
    )
    .unwrap();
    let tx = db.begin();
    let payload = vec![7u8; 2048];
    let img = db
        .create_object(
            &tx,
            "Image",
            vec![("name", Value::str("logo")), ("bits", Value::Blob(payload.clone()))],
        )
        .unwrap();
    assert_eq!(db.get(&tx, img, "bits").unwrap(), Value::Blob(payload));
    db.commit(tx).unwrap();
}
