//! Property tests for the facade: random transactional workloads with
//! commit/rollback against an in-memory model, verified through the
//! indexed query path — which also fuzzes simple- and nested-index
//! maintenance, rollback rebuild, and crash recovery.

use orion_core::{AttrSpec, Database, Domain, IndexKind, Oid, PrimitiveType, Value};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    CreateVehicle { class: u8, weight: i8, company: u8 },
    SetWeight { vehicle: u8, weight: i8 },
    SetManufacturer { vehicle: u8, company: u8 },
    MoveCompany { company: u8, city: u8 },
    DeleteVehicle { vehicle: u8 },
}

fn arb_txns() -> impl Strategy<Value = Vec<(u8, Vec<Op>)>> {
    let op = prop_oneof![
        (any::<u8>(), any::<i8>(), any::<u8>())
            .prop_map(|(class, weight, company)| Op::CreateVehicle { class, weight, company }),
        (any::<u8>(), any::<i8>()).prop_map(|(vehicle, weight)| Op::SetWeight { vehicle, weight }),
        (any::<u8>(), any::<u8>())
            .prop_map(|(vehicle, company)| Op::SetManufacturer { vehicle, company }),
        (any::<u8>(), any::<u8>()).prop_map(|(company, city)| Op::MoveCompany { company, city }),
        any::<u8>().prop_map(|vehicle| Op::DeleteVehicle { vehicle }),
    ];
    // (outcome, ops): outcome 0 = rollback, 1 = commit, 2 = commit+crash.
    proptest::collection::vec((0u8..3, proptest::collection::vec(op, 1..6)), 1..10)
}

#[derive(Debug, Clone)]
struct ModelVehicle {
    class: usize,
    weight: i64,
    company: usize,
}

const CITIES: [&str; 3] = ["Detroit", "Austin", "Kyoto"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transactional_workload_matches_model(txns in arb_txns()) {
        let db = Database::open_in_memory();
        db.create_class(
            "Company",
            &[],
            vec![AttrSpec::new("location", Domain::Primitive(PrimitiveType::Str))],
        ).unwrap();
        let company_cls = db.with_catalog(|c| c.class_id("Company")).unwrap();
        db.create_class(
            "Vehicle",
            &[],
            vec![
                AttrSpec::new("weight", Domain::Primitive(PrimitiveType::Int)),
                AttrSpec::new("manufacturer", Domain::Class(company_cls)),
            ],
        ).unwrap();
        db.create_class("Car", &["Vehicle"], vec![]).unwrap();
        db.create_class("Truck", &["Vehicle"], vec![]).unwrap();
        db.create_index("w", IndexKind::ClassHierarchy, "Vehicle", &["weight"]).unwrap();
        db.create_index("loc", IndexKind::Nested, "Vehicle", &["manufacturer", "location"]).unwrap();
        let classes = ["Car", "Truck"];

        // Fixed companies.
        let setup = db.begin();
        let companies: Vec<Oid> = (0..3)
            .map(|i| {
                db.create_object(&setup, "Company", vec![("location", Value::str(CITIES[i]))])
                    .unwrap()
            })
            .collect();
        db.commit(setup).unwrap();

        // Committed model state.
        let mut model: HashMap<Oid, ModelVehicle> = HashMap::new();
        let mut company_city: Vec<usize> = vec![0, 1, 2];

        for (outcome, ops) in &txns {
            let tx = db.begin();
            let mut staged = model.clone();
            let mut staged_city = company_city.clone();
            for op in ops {
                match op {
                    Op::CreateVehicle { class, weight, company } => {
                        let cls = *class as usize % 2;
                        let com = *company as usize % 3;
                        let oid = db.create_object(&tx, classes[cls], vec![
                            ("weight", Value::Int(*weight as i64)),
                            ("manufacturer", Value::Ref(companies[com])),
                        ]).unwrap();
                        staged.insert(oid, ModelVehicle {
                            class: cls, weight: *weight as i64, company: com,
                        });
                    }
                    Op::SetWeight { vehicle, weight } => {
                        let oids: Vec<Oid> = staged.keys().copied().collect();
                        if oids.is_empty() { continue; }
                        let oid = oids[*vehicle as usize % oids.len()];
                        db.set(&tx, oid, "weight", Value::Int(*weight as i64)).unwrap();
                        staged.get_mut(&oid).unwrap().weight = *weight as i64;
                    }
                    Op::SetManufacturer { vehicle, company } => {
                        let oids: Vec<Oid> = staged.keys().copied().collect();
                        if oids.is_empty() { continue; }
                        let oid = oids[*vehicle as usize % oids.len()];
                        let com = *company as usize % 3;
                        db.set(&tx, oid, "manufacturer", Value::Ref(companies[com])).unwrap();
                        staged.get_mut(&oid).unwrap().company = com;
                    }
                    Op::MoveCompany { company, city } => {
                        let com = *company as usize % 3;
                        let city = *city as usize % 3;
                        db.set(&tx, companies[com], "location", Value::str(CITIES[city]))
                            .unwrap();
                        staged_city[com] = city;
                    }
                    Op::DeleteVehicle { vehicle } => {
                        let oids: Vec<Oid> = staged.keys().copied().collect();
                        if oids.is_empty() { continue; }
                        let oid = oids[*vehicle as usize % oids.len()];
                        db.delete_object(&tx, oid).unwrap();
                        staged.remove(&oid);
                    }
                }
            }
            match outcome {
                0 => {
                    db.rollback(tx).unwrap();
                }
                1 => {
                    db.commit(tx).unwrap();
                    model = staged;
                    company_city = staged_city;
                }
                _ => {
                    db.commit(tx).unwrap();
                    model = staged;
                    company_city = staged_city;
                    db.crash_and_recover().unwrap();
                }
            }

            // --- Verify through the (indexed) query path -----------------
            let check = db.begin();
            // Count per class, hierarchy-wide.
            let total = db.query(&check, "select count(*) from Vehicle* v").unwrap();
            prop_assert_eq!(total.rows[0][0].as_int().unwrap() as usize, model.len());

            // Weight point queries hit the CH index.
            for probe in [-5i64, 0, 7] {
                let q = format!("select v from Vehicle* v where v.weight = {probe}");
                let got = db.query(&check, &q).unwrap();
                let want =
                    model.values().filter(|m| m.weight == probe).count();
                prop_assert_eq!(got.len(), want, "weight {} via {}", probe,
                    db.explain(&check, &q).unwrap());
            }

            // Nested-location queries hit the nested index; company moves
            // must have re-keyed every reaching vehicle.
            for (ci, city) in CITIES.iter().enumerate() {
                let q = format!(
                    "select count(*) from Vehicle* v where v.manufacturer.location = \"{city}\""
                );
                let _ = ci;
                let got = db.query(&check, &q).unwrap().rows[0][0].as_int().unwrap() as usize;
                // Two companies may share a city, so compare by name.
                let want = model
                    .values()
                    .filter(|m| CITIES[company_city[m.company]] == *city)
                    .count();
                prop_assert_eq!(got, want, "city {}", city);
            }

            // Per-class extents.
            let cars = db.query(&check, "select count(*) from Car v").unwrap();
            prop_assert_eq!(
                cars.rows[0][0].as_int().unwrap() as usize,
                model.values().filter(|m| m.class == 0).count()
            );
            db.commit(check).unwrap();
        }
    }
}
