//! Schema management for orion: classes, the class hierarchy, inheritance,
//! method signatures, and dynamic schema evolution.
//!
//! "All the classes are organized as a rooted directed acyclic graph or a
//! hierarchy ... A class inherits all the attributes and methods from its
//! direct and indirect ancestors ... The class hierarchy must be
//! dynamically extensible" (§3.1, concept 5). This crate is the catalog
//! that realizes those words:
//!
//! * [`Class`] / [`Attribute`] / [`MethodSig`] — the schema vocabulary,
//! * [`Catalog`] — the class DAG, name resolution, inheritance
//!   (flattening with ORION-style leftmost-superclass conflict
//!   resolution), subclass closures for hierarchy-scoped queries, and
//!   method-resolution order with a dispatch cache,
//! * [`evolution`] — the schema-change taxonomy of \[BANE87\] with
//!   invariant checking and support for lazy instance adaptation.
//!
//! The class system is deliberately *data-driven* rather than mapped onto
//! Rust traits: a trait hierarchy is closed at compile time, while the
//! paper requires new subclasses at run time. Classes here are catalog
//! rows, exactly as an OODB kernel represents them.

pub mod catalog;
pub mod class;
pub mod evolution;
pub mod snapshot;

pub use catalog::{Catalog, ResolvedClass};
pub use class::{AttrSpec, Attribute, Class, MethodSig};
pub use evolution::SchemaChange;
