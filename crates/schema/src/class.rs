//! Class, attribute, and method-signature definitions.

use orion_types::{ClassId, Domain, Value};

/// A fully-specified attribute as stored in the catalog.
///
/// Attribute ids are allocated once, globally, at the class where the
/// attribute is *defined*; subclasses inherit the same id. Stored records
/// key values by this id, so inheriting, renaming, or re-resolving an
/// attribute never requires touching instances.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Catalog-wide unique id; the key under which records store values.
    pub id: u32,
    /// Name, unique within a class's *resolved* attribute set.
    pub name: String,
    /// Domain; may be any class (§3.1 concept 4).
    pub domain: Domain,
    /// Value an instance exposes before the attribute is ever assigned.
    pub default: Value,
    /// Marks an exclusive, dependent part-of reference (\[KIM89c\]
    /// composite objects): the referenced object belongs to exactly one
    /// parent and is deleted with it.
    pub composite: bool,
    /// The class that defines (as opposed to inherits) this attribute.
    pub defined_in: ClassId,
}

/// What a user supplies when declaring an attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrSpec {
    /// Attribute name.
    pub name: String,
    /// Attribute domain.
    pub domain: Domain,
    /// Default value; [`Value::Null`] if not stated.
    pub default: Value,
    /// Composite (exclusive dependent part-of) marker.
    pub composite: bool,
}

impl AttrSpec {
    /// A plain attribute with a null default.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        AttrSpec { name: name.into(), domain, default: Value::Null, composite: false }
    }

    /// Attach a default value.
    pub fn with_default(mut self, default: Value) -> Self {
        self.default = default;
        self
    }

    /// Mark the attribute as a composite (part-of) reference.
    pub fn composite(mut self) -> Self {
        self.composite = true;
        self
    }
}

/// A method signature in the catalog.
///
/// Bodies are native Rust closures held by the method registry in
/// `orion-core`; the catalog stores only what late binding needs: the
/// selector, arity, and the class the method is defined in. Resolution
/// walks the instance's class linearization at call time (§3.1 concept 6:
/// "run-time binding of a message to its corresponding method").
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSig {
    /// Message selector.
    pub selector: String,
    /// Number of arguments after the receiver.
    pub arity: u8,
    /// The class defining this implementation.
    pub defined_in: ClassId,
}

/// A class as stored in the catalog: identity, direct superclasses, and
/// *locally defined* attributes and methods. The inherited (resolved)
/// view is computed by [`crate::Catalog::resolve`].
#[derive(Debug, Clone)]
pub struct Class {
    /// Catalog id, embedded in every instance's OID.
    pub id: ClassId,
    /// Unique class name.
    pub name: String,
    /// Direct superclasses, in declaration order. Order matters: name
    /// conflicts among inherited attributes/methods resolve to the
    /// leftmost superclass (ORION's rule).
    pub supers: Vec<ClassId>,
    /// Attributes defined (not inherited) by this class.
    pub local_attrs: Vec<Attribute>,
    /// Methods defined (not inherited) by this class.
    pub local_methods: Vec<MethodSig>,
    /// Bumped whenever this class's *resolved* definition changes
    /// (locally or via an ancestor); drives lazy instance adaptation.
    pub version: u32,
}

impl Class {
    /// Find a locally defined attribute by name.
    pub fn local_attr(&self, name: &str) -> Option<&Attribute> {
        self.local_attrs.iter().find(|a| a.name == name)
    }

    /// Find a locally defined method by selector.
    pub fn local_method(&self, selector: &str) -> Option<&MethodSig> {
        self.local_methods.iter().find(|m| m.selector == selector)
    }
}
