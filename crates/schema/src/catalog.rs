//! The class catalog: hierarchy maintenance, inheritance resolution,
//! subclass closures, and late-binding method resolution.

use crate::class::{AttrSpec, Attribute, Class, MethodSig};
use orion_types::{ClassId, DbError, DbResult, Domain, Value};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A class with inheritance fully applied: the flattened attribute and
/// method sets a query, index, or object manager actually works against.
#[derive(Debug, Clone)]
pub struct ResolvedClass {
    /// The class id.
    pub id: ClassId,
    /// The class name.
    pub name: String,
    /// All attributes — inherited then local — after conflict resolution.
    pub attrs: Vec<Attribute>,
    /// All methods after conflict resolution; `defined_in` tells which
    /// class's implementation wins for each selector.
    pub methods: Vec<MethodSig>,
    /// The class version this resolution reflects.
    pub version: u32,
}

impl ResolvedClass {
    /// Look up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<&Attribute> {
        self.attrs.iter().find(|a| a.name == name)
    }

    /// Look up an attribute by catalog id.
    pub fn attr_by_id(&self, id: u32) -> Option<&Attribute> {
        self.attrs.iter().find(|a| a.id == id)
    }

    /// Look up a method by selector.
    pub fn method(&self, selector: &str) -> Option<&MethodSig> {
        self.methods.iter().find(|m| m.selector == selector)
    }
}

/// Counters for the method-dispatch cache (experiment E7).
#[derive(Debug, Default)]
pub struct DispatchStats {
    /// Dispatches answered from the cache.
    pub hits: AtomicU64,
    /// Dispatches that walked the linearization.
    pub misses: AtomicU64,
}

impl DispatchStats {
    /// Snapshot `(hits, misses)`.
    pub fn snapshot(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Reset both counters.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// The schema catalog.
///
/// Mutation requires `&mut self` (the facade serializes schema changes
/// under a schema lock); reads are `&self` and cache resolved classes,
/// subtree closures, and method targets behind interior locks that are
/// invalidated wholesale on any schema change — schema changes are rare,
/// reads are hot.
#[derive(Debug)]
pub struct Catalog {
    classes: Vec<Option<Class>>,
    by_name: HashMap<String, ClassId>,
    next_attr_id: u32,
    /// Global schema version; bumped on every change.
    version: u32,
    resolved: RwLock<HashMap<ClassId, Arc<ResolvedClass>>>,
    subtrees: RwLock<HashMap<ClassId, Arc<Vec<ClassId>>>>,
    /// `(class, selector) → defining class` method cache. Can be disabled
    /// to measure raw late-binding cost (experiment E7).
    method_cache: RwLock<HashMap<(ClassId, String), ClassId>>,
    method_cache_enabled: bool,
    /// Dispatch cache counters.
    pub dispatch_stats: DispatchStats,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog {
            classes: Vec::new(),
            by_name: HashMap::new(),
            next_attr_id: 1,
            version: 0,
            resolved: RwLock::new(HashMap::new()),
            subtrees: RwLock::new(HashMap::new()),
            method_cache: RwLock::new(HashMap::new()),
            method_cache_enabled: true,
            dispatch_stats: DispatchStats::default(),
        }
    }

    /// Enable or disable the method-dispatch cache (for benchmarking the
    /// cost of uncached late binding).
    pub fn set_method_cache_enabled(&mut self, enabled: bool) {
        self.method_cache_enabled = enabled;
        self.method_cache.write().clear();
    }

    /// The global schema version (monotone across all changes).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Number of live classes.
    pub fn class_count(&self) -> usize {
        self.classes.iter().flatten().count()
    }

    /// Iterate over all live classes.
    pub fn classes(&self) -> impl Iterator<Item = &Class> {
        self.classes.iter().flatten()
    }

    // ------------------------------------------------------------------
    // Class creation and lookup
    // ------------------------------------------------------------------

    /// Create a class with the given direct superclasses and locally
    /// defined attributes. Validates: unique name, existing superclasses,
    /// acyclicity (trivially — a new class cannot be its own ancestor),
    /// and that the resolved attribute set is conflict-free.
    pub fn create_class(
        &mut self,
        name: &str,
        supers: &[ClassId],
        attrs: Vec<AttrSpec>,
    ) -> DbResult<ClassId> {
        if self.by_name.contains_key(name) {
            return Err(DbError::AlreadyExists(format!("class `{name}`")));
        }
        for sup in supers {
            self.class(*sup)?;
        }
        let mut uniq = HashSet::new();
        for sup in supers {
            if !uniq.insert(*sup) {
                return Err(DbError::SchemaInvariant(format!(
                    "duplicate superclass {sup} in definition of `{name}`"
                )));
            }
        }
        let id = ClassId(self.classes.len() as u16);
        if id.0 == u16::MAX {
            return Err(DbError::SchemaInvariant("class id space exhausted".into()));
        }
        let local_attrs = attrs
            .into_iter()
            .map(|spec| self.make_attribute(id, spec))
            .collect::<DbResult<Vec<_>>>()?;
        let class = Class {
            id,
            name: name.to_owned(),
            supers: supers.to_vec(),
            local_attrs,
            local_methods: Vec::new(),
            version: 0,
        };
        self.classes.push(Some(class));
        self.by_name.insert(name.to_owned(), id);
        // Resolving checks for attribute-name conflicts among supers.
        if let Err(e) = self.check_resolvable(id) {
            self.classes[id.0 as usize] = None;
            self.by_name.remove(name);
            return Err(e);
        }
        self.touch();
        Ok(id)
    }

    pub(crate) fn make_attribute(&mut self, owner: ClassId, spec: AttrSpec) -> DbResult<Attribute> {
        if let Domain::Class(c) = &spec.domain {
            // Self-reference (`Domain::Class(owner)`) is explicitly legal
            // (§3.1 concept 4) and `owner` is not yet in the table when
            // called from create_class, so only validate foreign ids.
            if *c != owner {
                self.class(*c)?;
            }
        } else if let Some(leaf) = spec.domain.leaf_class() {
            if leaf != owner {
                self.class(leaf)?;
            }
        }
        if spec.composite && !spec.domain.is_reference() {
            return Err(DbError::SchemaInvariant(format!(
                "composite attribute `{}` must have a class domain, got `{}`",
                spec.name, spec.domain
            )));
        }
        let id = self.next_attr_id;
        self.next_attr_id += 1;
        Ok(Attribute {
            id,
            name: spec.name,
            domain: spec.domain,
            default: spec.default,
            composite: spec.composite,
            defined_in: owner,
        })
    }

    /// Look up a class by id.
    pub fn class(&self, id: ClassId) -> DbResult<&Class> {
        self.classes
            .get(id.0 as usize)
            .and_then(|slot| slot.as_ref())
            .ok_or(DbError::UnknownClassId(id))
    }

    pub(crate) fn class_mut(&mut self, id: ClassId) -> DbResult<&mut Class> {
        self.classes
            .get_mut(id.0 as usize)
            .and_then(|slot| slot.as_mut())
            .ok_or(DbError::UnknownClassId(id))
    }

    /// Look up a class id by name.
    pub fn class_id(&self, name: &str) -> DbResult<ClassId> {
        self.by_name.get(name).copied().ok_or_else(|| DbError::UnknownClass(name.to_owned()))
    }

    /// Look up a class by name.
    pub fn class_by_name(&self, name: &str) -> DbResult<&Class> {
        self.class(self.class_id(name)?)
    }

    // ------------------------------------------------------------------
    // Hierarchy queries
    // ------------------------------------------------------------------

    /// Direct subclasses of `id`.
    pub fn direct_subclasses(&self, id: ClassId) -> Vec<ClassId> {
        self.classes
            .iter()
            .flatten()
            .filter(|c| c.supers.contains(&id))
            .map(|c| c.id)
            .collect()
    }

    /// The class hierarchy rooted at `id`: `id` plus all direct and
    /// indirect subclasses, in deterministic (id) order. This is the
    /// scope of a hierarchy query (`from Vehicle* v`) and of a
    /// class-hierarchy index.
    pub fn subtree(&self, id: ClassId) -> DbResult<Arc<Vec<ClassId>>> {
        self.class(id)?;
        if let Some(cached) = self.subtrees.read().get(&id) {
            return Ok(Arc::clone(cached));
        }
        let mut seen = HashSet::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if seen.insert(cur) {
                stack.extend(self.direct_subclasses(cur));
            }
        }
        let mut members: Vec<ClassId> = seen.into_iter().collect();
        members.sort();
        let members = Arc::new(members);
        self.subtrees.write().insert(id, Arc::clone(&members));
        Ok(members)
    }

    /// All ancestors of `id` (not including `id`), unordered.
    pub fn ancestors(&self, id: ClassId) -> DbResult<HashSet<ClassId>> {
        let mut seen = HashSet::new();
        let mut stack = self.class(id)?.supers.clone();
        while let Some(cur) = stack.pop() {
            if seen.insert(cur) {
                stack.extend(self.class(cur)?.supers.iter().copied());
            }
        }
        Ok(seen)
    }

    /// Is `sub` the same class as `sup` or a (transitive) subclass of it?
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        match self.ancestors(sub) {
            Ok(ancestors) => ancestors.contains(&sup),
            Err(_) => false,
        }
    }

    /// The method/attribute resolution order: the class itself, then its
    /// superclasses in left-to-right depth-first order with the first
    /// occurrence kept (ORION's ordering rule for multiple inheritance).
    pub fn linearize(&self, id: ClassId) -> DbResult<Vec<ClassId>> {
        let mut order = Vec::new();
        let mut seen = HashSet::new();
        self.linearize_into(id, &mut order, &mut seen)?;
        Ok(order)
    }

    fn linearize_into(
        &self,
        id: ClassId,
        order: &mut Vec<ClassId>,
        seen: &mut HashSet<ClassId>,
    ) -> DbResult<()> {
        if !seen.insert(id) {
            return Ok(());
        }
        order.push(id);
        let supers = self.class(id)?.supers.clone();
        for sup in supers {
            self.linearize_into(sup, order, seen)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Inheritance resolution
    // ------------------------------------------------------------------

    /// The fully resolved (inheritance-applied) view of a class; cached.
    pub fn resolve(&self, id: ClassId) -> DbResult<Arc<ResolvedClass>> {
        if let Some(cached) = self.resolved.read().get(&id) {
            return Ok(Arc::clone(cached));
        }
        let resolved = Arc::new(self.resolve_uncached(id)?);
        self.resolved.write().insert(id, Arc::clone(&resolved));
        Ok(resolved)
    }

    /// Resolve by class name.
    pub fn resolve_by_name(&self, name: &str) -> DbResult<Arc<ResolvedClass>> {
        self.resolve(self.class_id(name)?)
    }

    fn resolve_uncached(&self, id: ClassId) -> DbResult<ResolvedClass> {
        let class = self.class(id)?;
        // Walk the linearization from most-derived to least; keep the
        // first definition seen for each name (leftmost/most-derived
        // wins, so a local redefinition shadows inherited ones — §3.1
        // concept 5 "even redefine some of the inherited behavior and
        // attributes").
        let order = self.linearize(id)?;
        let mut attrs: Vec<Attribute> = Vec::new();
        let mut attr_names: HashSet<&str> = HashSet::new();
        let mut methods: Vec<MethodSig> = Vec::new();
        let mut method_names: HashSet<&str> = HashSet::new();
        for cid in &order {
            let c = self.class(*cid)?;
            for attr in &c.local_attrs {
                if attr_names.insert(attr.name.as_str()) {
                    attrs.push(attr.clone());
                } else if attr.defined_in == *cid && *cid != id {
                    // Shadowed inherited attribute: keep the more derived
                    // definition already collected.
                }
            }
            for method in &c.local_methods {
                if method_names.insert(method.selector.as_str()) {
                    methods.push(method.clone());
                }
            }
        }
        // Deterministic order for stored records and projections:
        // inherited-first is already a property of linearization order;
        // sort by attribute id for stability.
        attrs.sort_by_key(|a| a.id);
        methods.sort_by(|a, b| a.selector.cmp(&b.selector));
        Ok(ResolvedClass {
            id,
            name: class.name.clone(),
            attrs,
            methods,
            version: class.version,
        })
    }

    fn check_resolvable(&self, id: ClassId) -> DbResult<()> {
        // A name defined in two *unrelated* superclasses is a conflict
        // resolved silently by leftmost order (ORION). But two
        // definitions with the same name and *incompatible domains*
        // coming from different supers deserve an error, because records
        // of the merged class could satisfy neither. We detect the
        // domain-incompatible case here.
        let order = self.linearize(id)?;
        let mut first: HashMap<&str, &Attribute> = HashMap::new();
        for cid in &order {
            let c = self.class(*cid)?;
            for attr in &c.local_attrs {
                if let Some(existing) = first.get(attr.name.as_str()) {
                    let sub = |a: ClassId, b: ClassId| self.is_subclass(a, b);
                    if existing.id != attr.id
                        && !existing.domain.specializes(&attr.domain, &sub)
                        && !attr.domain.specializes(&existing.domain, &sub)
                    {
                        return Err(DbError::SchemaInvariant(format!(
                            "attribute `{}` inherited with incompatible domains `{}` and `{}`",
                            attr.name, existing.domain, attr.domain
                        )));
                    }
                } else {
                    first.insert(attr.name.as_str(), attr);
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Method resolution (late binding)
    // ------------------------------------------------------------------

    /// Define a method on a class. The body lives in the facade's method
    /// registry under `(defined_in, selector)`.
    pub fn add_method(&mut self, class: ClassId, selector: &str, arity: u8) -> DbResult<()> {
        let exists = self.class(class)?.local_method(selector).is_some();
        if exists {
            let name = self.class(class)?.name.clone();
            return Err(DbError::AlreadyExists(format!("method `{selector}` on `{name}`")));
        }
        let c = self.class_mut(class)?;
        c.local_methods.push(MethodSig {
            selector: selector.to_owned(),
            arity,
            defined_in: class,
        });
        self.bump_versions(class)?;
        self.touch();
        Ok(())
    }

    /// Remove a locally defined method.
    pub fn drop_method(&mut self, class: ClassId, selector: &str) -> DbResult<()> {
        let c = self.class_mut(class)?;
        let before = c.local_methods.len();
        c.local_methods.retain(|m| m.selector != selector);
        if c.local_methods.len() == before {
            let name = self.class(class)?.name.clone();
            return Err(DbError::UnknownMethod { class: name, selector: selector.to_owned() });
        }
        self.bump_versions(class)?;
        self.touch();
        Ok(())
    }

    /// Late-bind a message: find the class whose implementation of
    /// `selector` an instance of `class` runs. "If a message sent to an
    /// instance of a class is undefined for the class, it is sent up the
    /// class hierarchy to determine the class in which it is defined"
    /// (§3.3). Uses the dispatch cache when enabled.
    pub fn resolve_method(&self, class: ClassId, selector: &str) -> DbResult<ClassId> {
        if self.method_cache_enabled {
            if let Some(target) = self.method_cache.read().get(&(class, selector.to_owned())) {
                self.dispatch_stats.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(*target);
            }
        }
        self.dispatch_stats.misses.fetch_add(1, Ordering::Relaxed);
        let order = self.linearize(class)?;
        for cid in order {
            if self.class(cid)?.local_method(selector).is_some() {
                if self.method_cache_enabled {
                    self.method_cache.write().insert((class, selector.to_owned()), cid);
                }
                return Ok(cid);
            }
        }
        Err(DbError::UnknownMethod {
            class: self.class(class)?.name.clone(),
            selector: selector.to_owned(),
        })
    }

    // ------------------------------------------------------------------
    // Invalidation & invariants
    // ------------------------------------------------------------------

    /// Bump the version of `class` and every subclass (their resolved
    /// definitions all changed), and drop read caches.
    pub(crate) fn bump_versions(&mut self, class: ClassId) -> DbResult<()> {
        let affected = self.subtree(class)?.as_ref().clone();
        for id in affected {
            self.class_mut(id)?.version += 1;
        }
        Ok(())
    }

    pub(crate) fn touch(&mut self) {
        self.version += 1;
        self.resolved.write().clear();
        self.subtrees.write().clear();
        self.method_cache.write().clear();
    }

    pub(crate) fn remove_class_entry(&mut self, id: ClassId) -> DbResult<Class> {
        let class = self
            .classes
            .get_mut(id.0 as usize)
            .and_then(|slot| slot.take())
            .ok_or(DbError::UnknownClassId(id))?;
        self.by_name.remove(&class.name);
        Ok(class)
    }

    pub(crate) fn rename_entry(&mut self, id: ClassId, new: &str) -> DbResult<()> {
        if self.by_name.contains_key(new) {
            return Err(DbError::AlreadyExists(format!("class `{new}`")));
        }
        let old = self.class(id)?.name.clone();
        self.by_name.remove(&old);
        self.by_name.insert(new.to_owned(), id);
        self.class_mut(id)?.name = new.to_owned();
        Ok(())
    }

    /// Check every schema invariant; returns the list of violations.
    /// Used by tests and by the evolution module after each change.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        // 1. Acyclicity of the class DAG.
        for class in self.classes() {
            match self.ancestors(class.id) {
                Ok(ancestors) => {
                    if ancestors.contains(&class.id) {
                        problems.push(format!("class `{}` is its own ancestor", class.name));
                    }
                }
                Err(e) => problems.push(format!("dangling superclass under `{}`: {e}", class.name)),
            }
        }
        // 2. Name table consistency.
        for class in self.classes() {
            if self.by_name.get(&class.name) != Some(&class.id) {
                problems.push(format!("name table out of sync for `{}`", class.name));
            }
        }
        // 3. Resolved attribute/method name uniqueness, domain validity.
        for class in self.classes() {
            if let Err(e) = self.check_resolvable(class.id) {
                problems.push(format!("class `{}`: {e}", class.name));
            }
            match self.resolve(class.id) {
                Ok(resolved) => {
                    let mut names = HashSet::new();
                    for attr in &resolved.attrs {
                        if !names.insert(&attr.name) {
                            problems.push(format!(
                                "class `{}` resolves attribute `{}` twice",
                                class.name, attr.name
                            ));
                        }
                        if let Some(leaf) = attr.domain.leaf_class() {
                            if self.class(leaf).is_err() {
                                problems.push(format!(
                                    "attribute `{}.{}` references dropped class {leaf}",
                                    class.name, attr.name
                                ));
                            }
                        }
                        if attr.composite && !attr.domain.is_reference() {
                            problems.push(format!(
                                "composite attribute `{}.{}` has non-reference domain",
                                class.name, attr.name
                            ));
                        }
                    }
                    let mut sels = HashSet::new();
                    for m in &resolved.methods {
                        if !sels.insert(&m.selector) {
                            problems.push(format!(
                                "class `{}` resolves method `{}` twice",
                                class.name, m.selector
                            ));
                        }
                    }
                }
                Err(e) => problems.push(format!("class `{}` fails to resolve: {e}", class.name)),
            }
        }
        problems
    }

    /// Raw attribute-id counter (snapshot support).
    pub(crate) fn next_attr_id_raw(&self) -> u32 {
        self.next_attr_id
    }

    /// Raw class slots, including dropped (`None`) ones (snapshot support).
    pub(crate) fn class_slots(&self) -> &[Option<Class>] {
        &self.classes
    }

    /// Rebuild from snapshot parts; read caches start cold.
    pub(crate) fn from_parts(
        classes: Vec<Option<Class>>,
        next_attr_id: u32,
        version: u32,
    ) -> Catalog {
        let by_name = classes
            .iter()
            .flatten()
            .map(|c| (c.name.clone(), c.id))
            .collect();
        Catalog {
            classes,
            by_name,
            next_attr_id,
            version,
            resolved: RwLock::new(HashMap::new()),
            subtrees: RwLock::new(HashMap::new()),
            method_cache: RwLock::new(HashMap::new()),
            method_cache_enabled: true,
            dispatch_stats: DispatchStats::default(),
        }
    }

    /// Helper exposing the subclass test as a closure for [`Domain::admits`].
    pub fn subclass_fn(&self) -> impl Fn(ClassId, ClassId) -> bool + '_ {
        move |a, b| self.is_subclass(a, b)
    }

    /// Validate that `value` conforms to `attr`'s domain.
    pub fn check_domain(&self, class_name: &str, attr: &Attribute, value: &Value) -> DbResult<()> {
        if attr.domain.admits(value, &self.subclass_fn()) {
            Ok(())
        } else {
            Err(DbError::DomainViolation {
                class: class_name.to_owned(),
                attribute: attr.name.clone(),
                expected: attr.domain.to_string(),
                got: value.kind().to_owned(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_types::PrimitiveType;

    fn int() -> Domain {
        Domain::Primitive(PrimitiveType::Int)
    }
    fn string() -> Domain {
        Domain::Primitive(PrimitiveType::Str)
    }

    /// Build the paper's Figure 1 skeleton: Vehicle hierarchy + Company.
    fn figure1() -> (Catalog, ClassId, ClassId, ClassId, ClassId) {
        let mut cat = Catalog::new();
        let company = cat
            .create_class(
                "Company",
                &[],
                vec![AttrSpec::new("name", string()), AttrSpec::new("location", string())],
            )
            .unwrap();
        let vehicle = cat
            .create_class(
                "Vehicle",
                &[],
                vec![
                    AttrSpec::new("weight", int()),
                    AttrSpec::new("manufacturer", Domain::Class(company)),
                ],
            )
            .unwrap();
        let automobile = cat
            .create_class("Automobile", &[vehicle], vec![AttrSpec::new("drivetrain", string())])
            .unwrap();
        let truck = cat
            .create_class("Truck", &[vehicle], vec![AttrSpec::new("payload", int())])
            .unwrap();
        (cat, company, vehicle, automobile, truck)
    }

    #[test]
    fn create_and_lookup() {
        let (cat, company, vehicle, ..) = figure1();
        assert_eq!(cat.class_id("Company").unwrap(), company);
        assert_eq!(cat.class_by_name("Vehicle").unwrap().id, vehicle);
        assert!(cat.class_id("Spaceship").is_err());
        assert_eq!(cat.class_count(), 4);
    }

    #[test]
    fn duplicate_class_name_rejected() {
        let (mut cat, ..) = figure1();
        assert!(matches!(
            cat.create_class("Vehicle", &[], vec![]),
            Err(DbError::AlreadyExists(_))
        ));
    }

    #[test]
    fn inheritance_flattens_attributes() {
        let (cat, _, vehicle, automobile, _) = figure1();
        let resolved = cat.resolve(automobile).unwrap();
        let names: Vec<_> = resolved.attrs.iter().map(|a| a.name.as_str()).collect();
        assert!(names.contains(&"weight"));
        assert!(names.contains(&"manufacturer"));
        assert!(names.contains(&"drivetrain"));
        // The inherited attribute keeps the id of its defining class.
        let weight_in_vehicle = cat.resolve(vehicle).unwrap().attr("weight").unwrap().id;
        assert_eq!(resolved.attr("weight").unwrap().id, weight_in_vehicle);
        assert_eq!(resolved.attr("weight").unwrap().defined_in, vehicle);
    }

    #[test]
    fn subtree_and_subclass_tests() {
        let (cat, company, vehicle, automobile, truck) = figure1();
        let subtree = cat.subtree(vehicle).unwrap();
        assert_eq!(subtree.as_ref(), &vec![vehicle, automobile, truck]);
        assert!(cat.is_subclass(truck, vehicle));
        assert!(cat.is_subclass(vehicle, vehicle));
        assert!(!cat.is_subclass(vehicle, truck));
        assert!(!cat.is_subclass(company, vehicle));
    }

    #[test]
    fn deep_hierarchy_subtree() {
        let (mut cat, _, _, automobile, _) = figure1();
        let domestic =
            cat.create_class("DomesticAutomobile", &[automobile], vec![]).unwrap();
        let sports = cat.create_class("SportsCar", &[domestic], vec![]).unwrap();
        let subtree = cat.subtree(automobile).unwrap();
        assert!(subtree.contains(&sports));
        assert_eq!(subtree.len(), 3);
    }

    #[test]
    fn multiple_inheritance_leftmost_wins() {
        let mut cat = Catalog::new();
        let a = cat
            .create_class("A", &[], vec![AttrSpec::new("x", int()).with_default(Value::Int(1))])
            .unwrap();
        let b = cat
            .create_class("B", &[], vec![AttrSpec::new("x", int()).with_default(Value::Int(2))])
            .unwrap();
        let c = cat.create_class("C", &[a, b], vec![]).unwrap();
        let resolved = cat.resolve(c).unwrap();
        // Exactly one `x`, and it is A's (leftmost superclass).
        let xs: Vec<_> = resolved.attrs.iter().filter(|at| at.name == "x").collect();
        assert_eq!(xs.len(), 1);
        assert_eq!(xs[0].defined_in, a);
        assert_eq!(xs[0].default, Value::Int(1));
    }

    #[test]
    fn incompatible_inherited_domains_rejected() {
        let mut cat = Catalog::new();
        let a = cat.create_class("A", &[], vec![AttrSpec::new("x", int())]).unwrap();
        let b = cat.create_class("B", &[], vec![AttrSpec::new("x", string())]).unwrap();
        let err = cat.create_class("C", &[a, b], vec![]).unwrap_err();
        assert!(matches!(err, DbError::SchemaInvariant(_)));
        // The failed class must not linger in the catalog.
        assert!(cat.class_id("C").is_err());
        assert!(cat.validate().is_empty());
    }

    #[test]
    fn local_redefinition_shadows_inherited() {
        let mut cat = Catalog::new();
        let a = cat
            .create_class("A", &[], vec![AttrSpec::new("x", int()).with_default(Value::Int(1))])
            .unwrap();
        let b = cat
            .create_class("B", &[a], vec![AttrSpec::new("x", int()).with_default(Value::Int(9))])
            .unwrap();
        let resolved = cat.resolve(b).unwrap();
        let xs: Vec<_> = resolved.attrs.iter().filter(|at| at.name == "x").collect();
        assert_eq!(xs.len(), 1);
        assert_eq!(xs[0].defined_in, b, "subclass redefinition wins");
        assert_eq!(xs[0].default, Value::Int(9));
    }

    #[test]
    fn diamond_inheritance_resolves_once() {
        let mut cat = Catalog::new();
        let top = cat.create_class("Top", &[], vec![AttrSpec::new("t", int())]).unwrap();
        let left = cat.create_class("Left", &[top], vec![]).unwrap();
        let right = cat.create_class("Right", &[top], vec![]).unwrap();
        let bottom = cat.create_class("Bottom", &[left, right], vec![]).unwrap();
        let resolved = cat.resolve(bottom).unwrap();
        assert_eq!(resolved.attrs.iter().filter(|a| a.name == "t").count(), 1);
        let lin = cat.linearize(bottom).unwrap();
        assert_eq!(lin[0], bottom);
        assert_eq!(lin[1], left);
        assert!(lin.contains(&right) && lin.contains(&top));
        assert_eq!(lin.len(), 4);
    }

    #[test]
    fn method_resolution_walks_hierarchy() {
        let (mut cat, _, vehicle, automobile, _) = figure1();
        cat.add_method(vehicle, "display", 0).unwrap();
        // Inherited: resolves to Vehicle's implementation.
        assert_eq!(cat.resolve_method(automobile, "display").unwrap(), vehicle);
        // Override in the subclass: now resolves locally.
        cat.add_method(automobile, "display", 0).unwrap();
        assert_eq!(cat.resolve_method(automobile, "display").unwrap(), automobile);
        // Still Vehicle's for Vehicle instances.
        assert_eq!(cat.resolve_method(vehicle, "display").unwrap(), vehicle);
        assert!(cat.resolve_method(vehicle, "fly").is_err());
    }

    #[test]
    fn method_cache_hits_and_invalidates() {
        let (mut cat, _, vehicle, automobile, _) = figure1();
        cat.add_method(vehicle, "display", 0).unwrap();
        cat.dispatch_stats.reset();
        let _ = cat.resolve_method(automobile, "display").unwrap();
        let _ = cat.resolve_method(automobile, "display").unwrap();
        let (hits, misses) = cat.dispatch_stats.snapshot();
        assert_eq!((hits, misses), (1, 1));
        // A schema change invalidates the cache.
        cat.add_method(automobile, "display", 0).unwrap();
        assert_eq!(cat.resolve_method(automobile, "display").unwrap(), automobile);
    }

    #[test]
    fn method_cache_disable() {
        let (mut cat, _, vehicle, automobile, _) = figure1();
        cat.add_method(vehicle, "display", 0).unwrap();
        cat.set_method_cache_enabled(false);
        cat.dispatch_stats.reset();
        for _ in 0..5 {
            let _ = cat.resolve_method(automobile, "display").unwrap();
        }
        let (hits, misses) = cat.dispatch_stats.snapshot();
        assert_eq!(hits, 0);
        assert_eq!(misses, 5);
    }

    #[test]
    fn composite_attr_requires_reference_domain() {
        let mut cat = Catalog::new();
        let err = cat
            .create_class("X", &[], vec![AttrSpec::new("w", int()).composite()])
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaInvariant(_)));
    }

    #[test]
    fn self_referential_domain_allowed() {
        let mut cat = Catalog::new();
        // "The domain of an attribute of a class C may be the class C."
        let mut attrs = vec![AttrSpec::new("name", string())];
        // Self-reference must be expressed after creation (id unknown), so
        // create then evolve — see evolution tests; here test set-of-self
        // via two-step creation.
        let person = cat.create_class("Person", &[], std::mem::take(&mut attrs)).unwrap();
        let spec = AttrSpec::new("friends", Domain::set_of_class(person));
        crate::evolution::SchemaChange::AddAttribute { class: person, spec }
            .apply(&mut cat)
            .unwrap();
        let resolved = cat.resolve(person).unwrap();
        assert_eq!(resolved.attr("friends").unwrap().domain, Domain::set_of_class(person));
        assert!(cat.validate().is_empty());
    }

    #[test]
    fn versions_bump_down_the_subtree() {
        let (mut cat, _, vehicle, automobile, truck) = figure1();
        let v0 = cat.class(automobile).unwrap().version;
        cat.add_method(vehicle, "display", 0).unwrap();
        assert!(cat.class(automobile).unwrap().version > v0);
        assert!(cat.class(truck).unwrap().version > v0);
    }

    #[test]
    fn validate_clean_catalog() {
        let (cat, ..) = figure1();
        assert!(cat.validate().is_empty());
    }

    #[test]
    fn domain_check_reports_violation() {
        let (cat, _, vehicle, ..) = figure1();
        let resolved = cat.resolve(vehicle).unwrap();
        let weight = resolved.attr("weight").unwrap();
        assert!(cat.check_domain("Vehicle", weight, &Value::Int(100)).is_ok());
        let err = cat.check_domain("Vehicle", weight, &Value::str("heavy")).unwrap_err();
        assert!(matches!(err, DbError::DomainViolation { .. }));
    }
}
