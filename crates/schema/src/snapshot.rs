//! Catalog snapshots: a binary serialization of the whole schema.
//!
//! The facade stores the encoded catalog as a (chained) record in the
//! same WAL-protected heap as the objects, so restart recovery restores
//! the schema the same way it restores data — the catalog is just
//! another recoverable structure, as in a real system where class
//! definitions live in bootstrap tables.

use crate::catalog::Catalog;
use crate::class::{Attribute, Class, MethodSig};
use orion_types::codec::{decode_value, encode_value};
use orion_types::{ClassId, DbError, DbResult, Domain, PrimitiveType};

use bytes::{Buf, BufMut};

const MAGIC: u32 = 0x0D10_CA7A; // "odio-cata(log)"

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> DbResult<String> {
    if buf.remaining() < 4 {
        return Err(DbError::Storage("truncated snapshot string".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DbError::Storage("truncated snapshot string body".into()));
    }
    let s = String::from_utf8(buf[..len].to_vec())
        .map_err(|_| DbError::Storage("invalid UTF-8 in snapshot".into()))?;
    buf.advance(len);
    Ok(s)
}

fn put_domain(out: &mut Vec<u8>, domain: &Domain) {
    match domain {
        Domain::Primitive(p) => {
            out.put_u8(0);
            out.put_u8(match p {
                PrimitiveType::Int => 0,
                PrimitiveType::Float => 1,
                PrimitiveType::Bool => 2,
                PrimitiveType::Str => 3,
                PrimitiveType::Blob => 4,
            });
        }
        Domain::Class(c) => {
            out.put_u8(1);
            out.put_u16_le(c.0);
        }
        Domain::SetOf(inner) => {
            out.put_u8(2);
            put_domain(out, inner);
        }
        Domain::ListOf(inner) => {
            out.put_u8(3);
            put_domain(out, inner);
        }
        Domain::Any => out.put_u8(4),
    }
}

fn get_domain(buf: &mut &[u8]) -> DbResult<Domain> {
    if buf.remaining() < 1 {
        return Err(DbError::Storage("truncated snapshot domain".into()));
    }
    Ok(match buf.get_u8() {
        0 => {
            let p = match buf.get_u8() {
                0 => PrimitiveType::Int,
                1 => PrimitiveType::Float,
                2 => PrimitiveType::Bool,
                3 => PrimitiveType::Str,
                4 => PrimitiveType::Blob,
                other => {
                    return Err(DbError::Storage(format!("bad primitive tag {other}")))
                }
            };
            Domain::Primitive(p)
        }
        1 => Domain::Class(ClassId(buf.get_u16_le())),
        2 => Domain::SetOf(Box::new(get_domain(buf)?)),
        3 => Domain::ListOf(Box::new(get_domain(buf)?)),
        4 => Domain::Any,
        other => return Err(DbError::Storage(format!("bad domain tag {other}"))),
    })
}

fn put_attribute(out: &mut Vec<u8>, attr: &Attribute) {
    out.put_u32_le(attr.id);
    put_str(out, &attr.name);
    put_domain(out, &attr.domain);
    encode_value(&attr.default, out);
    out.put_u8(attr.composite as u8);
    out.put_u16_le(attr.defined_in.0);
}

fn get_attribute(buf: &mut &[u8]) -> DbResult<Attribute> {
    if buf.remaining() < 4 {
        return Err(DbError::Storage("truncated snapshot attribute".into()));
    }
    let id = buf.get_u32_le();
    let name = get_str(buf)?;
    let domain = get_domain(buf)?;
    let default = decode_value(buf)?;
    if buf.remaining() < 3 {
        return Err(DbError::Storage("truncated snapshot attribute tail".into()));
    }
    let composite = buf.get_u8() != 0;
    let defined_in = ClassId(buf.get_u16_le());
    Ok(Attribute { id, name, domain, default, composite, defined_in })
}

impl Catalog {
    /// Serialize the entire schema (classes, attributes, methods,
    /// counters) to bytes.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1024);
        out.put_u32_le(MAGIC);
        out.put_u32_le(self.version());
        out.put_u32_le(self.next_attr_id_raw());
        let slots = self.class_slots();
        out.put_u32_le(slots.len() as u32);
        for slot in slots {
            match slot {
                None => out.put_u8(0),
                Some(class) => {
                    out.put_u8(1);
                    out.put_u16_le(class.id.0);
                    put_str(&mut out, &class.name);
                    out.put_u32_le(class.version);
                    out.put_u16_le(class.supers.len() as u16);
                    for s in &class.supers {
                        out.put_u16_le(s.0);
                    }
                    out.put_u16_le(class.local_attrs.len() as u16);
                    for attr in &class.local_attrs {
                        put_attribute(&mut out, attr);
                    }
                    out.put_u16_le(class.local_methods.len() as u16);
                    for m in &class.local_methods {
                        put_str(&mut out, &m.selector);
                        out.put_u8(m.arity);
                        out.put_u16_le(m.defined_in.0);
                    }
                }
            }
        }
        out
    }

    /// Rebuild a catalog from a snapshot. Read caches start cold; the
    /// restored catalog validates clean or the restore fails.
    pub fn restore(bytes: &[u8]) -> DbResult<Catalog> {
        let mut buf = bytes;
        let buf = &mut buf;
        if buf.remaining() < 16 {
            return Err(DbError::Storage("truncated catalog snapshot".into()));
        }
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(DbError::Storage(format!(
                "bad catalog snapshot magic {magic:#x}"
            )));
        }
        let version = buf.get_u32_le();
        let next_attr_id = buf.get_u32_le();
        let count = buf.get_u32_le() as usize;
        let mut slots: Vec<Option<Class>> = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 1 {
                return Err(DbError::Storage("truncated snapshot class".into()));
            }
            match buf.get_u8() {
                0 => slots.push(None),
                1 => {
                    let id = ClassId(buf.get_u16_le());
                    let name = get_str(buf)?;
                    let class_version = buf.get_u32_le();
                    let n_supers = buf.get_u16_le() as usize;
                    let mut supers = Vec::with_capacity(n_supers);
                    for _ in 0..n_supers {
                        supers.push(ClassId(buf.get_u16_le()));
                    }
                    let n_attrs = buf.get_u16_le() as usize;
                    let mut local_attrs = Vec::with_capacity(n_attrs);
                    for _ in 0..n_attrs {
                        local_attrs.push(get_attribute(buf)?);
                    }
                    let n_methods = buf.get_u16_le() as usize;
                    let mut local_methods = Vec::with_capacity(n_methods);
                    for _ in 0..n_methods {
                        let selector = get_str(buf)?;
                        let arity = buf.get_u8();
                        let defined_in = ClassId(buf.get_u16_le());
                        local_methods.push(MethodSig { selector, arity, defined_in });
                    }
                    slots.push(Some(Class {
                        id,
                        name,
                        supers,
                        local_attrs,
                        local_methods,
                        version: class_version,
                    }));
                }
                other => return Err(DbError::Storage(format!("bad class tag {other}"))),
            }
        }
        let catalog = Catalog::from_parts(slots, next_attr_id, version);
        let problems = catalog.validate();
        if !problems.is_empty() {
            return Err(DbError::Storage(format!(
                "restored catalog fails validation: {}",
                problems.join("; ")
            )));
        }
        Ok(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::AttrSpec;
    use crate::SchemaChange;
    use orion_types::Value;

    fn build() -> Catalog {
        let mut cat = Catalog::new();
        let company = cat
            .create_class(
                "Company",
                &[],
                vec![AttrSpec::new("location", Domain::Primitive(PrimitiveType::Str))
                    .with_default(Value::str("Austin"))],
            )
            .unwrap();
        let vehicle = cat
            .create_class(
                "Vehicle",
                &[],
                vec![
                    AttrSpec::new("weight", Domain::Primitive(PrimitiveType::Int)),
                    AttrSpec::new("manufacturer", Domain::Class(company)),
                ],
            )
            .unwrap();
        let truck = cat
            .create_class(
                "Truck",
                &[vehicle],
                vec![AttrSpec::new("parts", Domain::set_of_class(vehicle)).composite()],
            )
            .unwrap();
        cat.add_method(vehicle, "display", 0).unwrap();
        cat.add_method(truck, "display", 0).unwrap();
        // A dropped class leaves a None slot worth preserving.
        let doomed = cat.create_class("Doomed", &[], vec![]).unwrap();
        SchemaChange::DropClass { class: doomed }.apply(&mut cat).unwrap();
        cat
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let cat = build();
        let restored = Catalog::restore(&cat.snapshot()).unwrap();
        assert_eq!(restored.version(), cat.version());
        assert_eq!(restored.class_count(), cat.class_count());
        // Names, ids, inheritance, attribute ids all survive.
        let truck = restored.class_id("Truck").unwrap();
        assert_eq!(truck, cat.class_id("Truck").unwrap());
        let old = cat.resolve(truck).unwrap();
        let new = restored.resolve(truck).unwrap();
        assert_eq!(old.attrs.len(), new.attrs.len());
        for (a, b) in old.attrs.iter().zip(new.attrs.iter()) {
            assert_eq!(a, b);
        }
        // Late binding still resolves to the same class.
        assert_eq!(
            restored.resolve_method(truck, "display").unwrap(),
            cat.resolve_method(truck, "display").unwrap()
        );
        // Dropped slots stay dropped (ids are not reused).
        assert!(restored.class_id("Doomed").is_err());
        // Further evolution picks up attribute ids above the old ones.
        let mut restored = restored;
        let vehicle = restored.class_id("Vehicle").unwrap();
        let before: Vec<u32> =
            restored.resolve(vehicle).unwrap().attrs.iter().map(|a| a.id).collect();
        SchemaChange::AddAttribute {
            class: vehicle,
            spec: AttrSpec::new("color", Domain::Primitive(PrimitiveType::Str)),
        }
        .apply(&mut restored)
        .unwrap();
        let new_id = restored.resolve(vehicle).unwrap().attr("color").unwrap().id;
        assert!(before.iter().all(|id| *id < new_id), "attr ids keep advancing");
    }

    #[test]
    fn garbage_and_truncation_rejected() {
        assert!(Catalog::restore(&[]).is_err());
        assert!(Catalog::restore(&[1, 2, 3, 4, 5, 6, 7, 8]).is_err());
        let cat = build();
        let bytes = cat.snapshot();
        for cut in [4usize, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(Catalog::restore(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut corrupt = bytes.clone();
        corrupt[0] ^= 0xFF;
        assert!(Catalog::restore(&corrupt).is_err(), "magic check");
    }
}
