//! Dynamic schema evolution.
//!
//! "The framework for the evolution of an object-oriented database schema
//! discussed in [SKAR86, BANE87, PENN87, ZICA89] represents important
//! first steps" (§5.1). This module implements the \[BANE87\] change
//! taxonomy: changes to the contents of a class (attributes, defaults,
//! domains) and changes to the hierarchy itself (add/drop superclass,
//! add/drop class), each validated against the schema invariants before
//! it is applied.
//!
//! Every change returns a [`ChangeEffect`] describing what — if anything —
//! stored instances need. The object layer may apply it **eagerly**
//! (rewrite every instance now) or **lazily** (instances carry the schema
//! version they were written under; they are adapted on next touch).
//! Experiment E6 measures the difference.

use crate::catalog::Catalog;
use crate::class::AttrSpec;
use orion_types::{ClassId, DbError, DbResult, Domain, Value};

/// A schema change in the \[BANE87\] taxonomy.
#[derive(Debug, Clone)]
pub enum SchemaChange {
    /// Define a new attribute on a class (inherited by its subtree).
    AddAttribute {
        /// Class to define the attribute on.
        class: ClassId,
        /// The attribute specification.
        spec: AttrSpec,
    },
    /// Remove an attribute defined on `class`.
    DropAttribute {
        /// The defining class.
        class: ClassId,
        /// Attribute name.
        name: String,
    },
    /// Rename an attribute defined on `class`. Stored instances are
    /// unaffected (records key values by attribute id).
    RenameAttribute {
        /// The defining class.
        class: ClassId,
        /// Current name.
        old: String,
        /// New name.
        new: String,
    },
    /// Change an attribute's default value (affects only future reads of
    /// unset attributes).
    ChangeDefault {
        /// The defining class.
        class: ClassId,
        /// Attribute name.
        name: String,
        /// New default.
        default: Value,
    },
    /// Generalize an attribute's domain. Only generalization is legal:
    /// every stored value conforming to the old domain must conform to
    /// the new one, so instances never need revalidation.
    GeneralizeDomain {
        /// The defining class.
        class: ClassId,
        /// Attribute name.
        name: String,
        /// The new, more general domain.
        domain: Domain,
    },
    /// Add a direct superclass (the class gains its inherited attributes
    /// and methods).
    AddSuperclass {
        /// The subclass.
        class: ClassId,
        /// The new superclass.
        superclass: ClassId,
    },
    /// Remove a direct superclass.
    DropSuperclass {
        /// The subclass.
        class: ClassId,
        /// The superclass to detach.
        superclass: ClassId,
    },
    /// Rename a class.
    RenameClass {
        /// The class.
        class: ClassId,
        /// Its new name.
        new: String,
    },
    /// Drop a class. Its direct subclasses are re-wired to its
    /// superclasses (\[BANE87\]'s default). Instances must already have
    /// been removed or migrated by the object layer.
    DropClass {
        /// The class to drop.
        class: ClassId,
    },
}

/// What stored instances need after a change was applied.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeEffect {
    /// Nothing; the change was metadata-only.
    None,
    /// An attribute appeared on these classes; instances lacking the
    /// attribute read `default` until written.
    AttributeAdded {
        /// The new attribute's id.
        attr_id: u32,
        /// Every class whose instances now carry the attribute.
        classes: Vec<ClassId>,
        /// Default for instances written before the change.
        default: Value,
    },
    /// An attribute disappeared from these classes; stored values under
    /// `attr_id` are garbage to be dropped on next write (lazy) or
    /// scrubbed now (eager).
    AttributeDropped {
        /// The dropped attribute's id.
        attr_id: u32,
        /// Every class whose instances carried it.
        classes: Vec<ClassId>,
    },
    /// The resolved definitions of these classes changed in a way that
    /// may add and/or remove several attributes (superclass changes).
    Reshaped {
        /// Affected classes (the subtree of the changed class).
        classes: Vec<ClassId>,
    },
    /// A class was removed; these former direct subclasses were rewired.
    ClassDropped {
        /// The dropped class.
        class: ClassId,
        /// Subclasses reparented onto the dropped class's superclasses.
        reparented: Vec<ClassId>,
    },
}

impl SchemaChange {
    /// Validate and apply the change to the catalog.
    ///
    /// On error the catalog is left unchanged (changes that require
    /// trial application — superclass edits — are rolled back if the
    /// resulting schema fails validation).
    pub fn apply(self, cat: &mut Catalog) -> DbResult<ChangeEffect> {
        match self {
            SchemaChange::AddAttribute { class, spec } => {
                if cat.class(class)?.local_attr(&spec.name).is_some() {
                    let cname = cat.class(class)?.name.clone();
                    return Err(DbError::AlreadyExists(format!(
                        "attribute `{}` on `{cname}`",
                        spec.name
                    )));
                }
                // Check domain compatibility against a same-named
                // attribute this class currently *inherits*: defining it
                // locally shadows, which is legal, but flag incompatible
                // domains (instances could hold values of either shape).
                let inherited = cat.resolve(class)?.attr(&spec.name).cloned();
                if let Some(existing) = inherited {
                    let sub = |a: ClassId, b: ClassId| cat.is_subclass(a, b);
                    if !spec.domain.specializes(&existing.domain, &sub) {
                        return Err(DbError::SchemaInvariant(format!(
                            "attribute `{}` would shadow an inherited attribute with \
                             incompatible domain `{}`",
                            spec.name, existing.domain
                        )));
                    }
                }
                let default = spec.default.clone();
                let attr = cat.make_attribute(class, spec)?;
                let attr_id = attr.id;
                cat.class_mut(class)?.local_attrs.push(attr);
                cat.bump_versions(class)?;
                cat.touch();
                let classes = cat.subtree(class)?.as_ref().clone();
                Ok(ChangeEffect::AttributeAdded { attr_id, classes, default })
            }

            SchemaChange::DropAttribute { class, name } => {
                let owner = cat.class(class)?;
                let cname = owner.name.clone();
                let attr = owner.local_attr(&name).cloned().ok_or_else(|| {
                    // Distinguish "inherited here" from "nonexistent".
                    DbError::SchemaInvariant(format!(
                        "attribute `{name}` is not defined on `{cname}`; \
                         drop it at its defining class"
                    ))
                })?;
                let attr_id = attr.id;
                cat.class_mut(class)?.local_attrs.retain(|a| a.name != name);
                cat.bump_versions(class)?;
                cat.touch();
                let classes = cat.subtree(class)?.as_ref().clone();
                Ok(ChangeEffect::AttributeDropped { attr_id, classes })
            }

            SchemaChange::RenameAttribute { class, old, new } => {
                if cat.resolve(class)?.attr(&new).is_some() {
                    let cname = cat.class(class)?.name.clone();
                    return Err(DbError::AlreadyExists(format!(
                        "attribute `{new}` on `{cname}`"
                    )));
                }
                let c = cat.class_mut(class)?;
                let attr = c.local_attrs.iter_mut().find(|a| a.name == old).ok_or_else(|| {
                    DbError::SchemaInvariant(format!(
                        "attribute `{old}` is not defined on this class; rename at the \
                         defining class"
                    ))
                })?;
                attr.name = new;
                cat.bump_versions(class)?;
                cat.touch();
                Ok(ChangeEffect::None)
            }

            SchemaChange::ChangeDefault { class, name, default } => {
                let sub_check = {
                    let c = cat.class(class)?;
                    let attr = c.local_attr(&name).ok_or_else(|| DbError::UnknownAttribute {
                        class: c.name.clone(),
                        attribute: name.clone(),
                    })?;
                    attr.domain.clone()
                };
                if !sub_check.admits(&default, &cat.subclass_fn()) {
                    let cname = cat.class(class)?.name.clone();
                    return Err(DbError::DomainViolation {
                        class: cname,
                        attribute: name,
                        expected: sub_check.to_string(),
                        got: default.kind().to_owned(),
                    });
                }
                let c = cat.class_mut(class)?;
                let attr = c.local_attrs.iter_mut().find(|a| a.name == name).unwrap();
                attr.default = default;
                cat.bump_versions(class)?;
                cat.touch();
                Ok(ChangeEffect::None)
            }

            SchemaChange::GeneralizeDomain { class, name, domain } => {
                let old_domain = {
                    let c = cat.class(class)?;
                    c.local_attr(&name)
                        .ok_or_else(|| DbError::UnknownAttribute {
                            class: c.name.clone(),
                            attribute: name.clone(),
                        })?
                        .domain
                        .clone()
                };
                let sub = |a: ClassId, b: ClassId| cat.is_subclass(a, b);
                if !old_domain.specializes(&domain, &sub) {
                    return Err(DbError::SchemaInvariant(format!(
                        "new domain `{domain}` does not generalize `{old_domain}`; \
                         narrowing would invalidate stored instances"
                    )));
                }
                let c = cat.class_mut(class)?;
                let attr = c.local_attrs.iter_mut().find(|a| a.name == name).unwrap();
                attr.domain = domain;
                cat.bump_versions(class)?;
                cat.touch();
                Ok(ChangeEffect::None)
            }

            SchemaChange::AddSuperclass { class, superclass } => {
                cat.class(superclass)?;
                if cat.class(class)?.supers.contains(&superclass) {
                    return Err(DbError::AlreadyExists(format!(
                        "superclass edge {class} -> {superclass}"
                    )));
                }
                // Acyclicity: the new superclass must not be below us.
                if cat.subtree(class)?.contains(&superclass) {
                    return Err(DbError::SchemaInvariant(format!(
                        "adding {superclass} as superclass of {class} would create a cycle"
                    )));
                }
                cat.class_mut(class)?.supers.push(superclass);
                cat.bump_versions(class)?;
                cat.touch();
                let problems = cat.validate();
                if !problems.is_empty() {
                    // Roll back.
                    cat.class_mut(class)?.supers.retain(|s| *s != superclass);
                    cat.touch();
                    return Err(DbError::SchemaInvariant(problems.join("; ")));
                }
                let classes = cat.subtree(class)?.as_ref().clone();
                Ok(ChangeEffect::Reshaped { classes })
            }

            SchemaChange::DropSuperclass { class, superclass } => {
                if !cat.class(class)?.supers.contains(&superclass) {
                    return Err(DbError::SchemaInvariant(format!(
                        "{superclass} is not a direct superclass of {class}"
                    )));
                }
                cat.class_mut(class)?.supers.retain(|s| *s != superclass);
                cat.bump_versions(class)?;
                cat.touch();
                let classes = cat.subtree(class)?.as_ref().clone();
                Ok(ChangeEffect::Reshaped { classes })
            }

            SchemaChange::RenameClass { class, new } => {
                cat.rename_entry(class, &new)?;
                cat.touch();
                Ok(ChangeEffect::None)
            }

            SchemaChange::DropClass { class } => {
                // Re-wire direct subclasses onto the dropped class's
                // supers, preserving their relative order.
                let supers = cat.class(class)?.supers.clone();
                let subclasses = cat.direct_subclasses(class);
                for sub_id in &subclasses {
                    let sub = cat.class_mut(*sub_id)?;
                    let mut new_supers = Vec::new();
                    for s in &sub.supers {
                        if *s == class {
                            for replacement in &supers {
                                if !new_supers.contains(replacement) {
                                    new_supers.push(*replacement);
                                }
                            }
                        } else if !new_supers.contains(s) {
                            new_supers.push(*s);
                        }
                    }
                    sub.supers = new_supers;
                }
                // Attributes defined by the dropped class disappear from
                // former subclasses; any class using it as a domain would
                // dangle — reject in that case.
                let dangling: Vec<String> = cat
                    .classes()
                    .filter(|c| c.id != class)
                    .flat_map(|c| c.local_attrs.iter().map(move |a| (c, a)))
                    .filter(|(_, a)| a.domain.leaf_class() == Some(class))
                    .map(|(c, a)| format!("{}.{}", c.name, a.name))
                    .collect();
                if !dangling.is_empty() {
                    // Roll the superclass rewiring back.
                    for sub_id in &subclasses {
                        let sub = cat.class_mut(*sub_id)?;
                        sub.supers.retain(|s| !supers.contains(s));
                        sub.supers.push(class);
                    }
                    return Err(DbError::SchemaInvariant(format!(
                        "class is the domain of attributes: {}",
                        dangling.join(", ")
                    )));
                }
                for sub_id in &subclasses {
                    cat.bump_versions(*sub_id)?;
                }
                cat.remove_class_entry(class)?;
                cat.touch();
                Ok(ChangeEffect::ClassDropped { class, reparented: subclasses })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::AttrSpec;
    use orion_types::PrimitiveType;

    fn int() -> Domain {
        Domain::Primitive(PrimitiveType::Int)
    }
    fn string() -> Domain {
        Domain::Primitive(PrimitiveType::Str)
    }

    fn vehicle_schema() -> (Catalog, ClassId, ClassId, ClassId) {
        let mut cat = Catalog::new();
        let vehicle = cat
            .create_class("Vehicle", &[], vec![AttrSpec::new("weight", int())])
            .unwrap();
        let auto = cat.create_class("Automobile", &[vehicle], vec![]).unwrap();
        let truck = cat.create_class("Truck", &[vehicle], vec![]).unwrap();
        (cat, vehicle, auto, truck)
    }

    #[test]
    fn add_attribute_propagates_to_subtree() {
        let (mut cat, vehicle, auto, truck) = vehicle_schema();
        let effect = SchemaChange::AddAttribute {
            class: vehicle,
            spec: AttrSpec::new("color", string()).with_default(Value::str("black")),
        }
        .apply(&mut cat)
        .unwrap();
        match effect {
            ChangeEffect::AttributeAdded { classes, default, .. } => {
                assert_eq!(classes, vec![vehicle, auto, truck]);
                assert_eq!(default, Value::str("black"));
            }
            other => panic!("unexpected effect {other:?}"),
        }
        assert!(cat.resolve(truck).unwrap().attr("color").is_some());
        assert!(cat.validate().is_empty());
    }

    #[test]
    fn add_duplicate_attribute_rejected() {
        let (mut cat, vehicle, ..) = vehicle_schema();
        let err = SchemaChange::AddAttribute {
            class: vehicle,
            spec: AttrSpec::new("weight", int()),
        }
        .apply(&mut cat)
        .unwrap_err();
        assert!(matches!(err, DbError::AlreadyExists(_)));
    }

    #[test]
    fn shadowing_with_compatible_domain_allowed() {
        let (mut cat, _, auto, _) = vehicle_schema();
        // Redefine inherited `weight` locally with the same domain: ok.
        SchemaChange::AddAttribute { class: auto, spec: AttrSpec::new("weight", int()) }
            .apply(&mut cat)
            .unwrap();
        assert!(cat.validate().is_empty());
    }

    #[test]
    fn shadowing_with_incompatible_domain_rejected() {
        let (mut cat, _, auto, _) = vehicle_schema();
        let err = SchemaChange::AddAttribute {
            class: auto,
            spec: AttrSpec::new("weight", string()),
        }
        .apply(&mut cat)
        .unwrap_err();
        assert!(matches!(err, DbError::SchemaInvariant(_)));
    }

    #[test]
    fn drop_attribute_only_at_defining_class() {
        let (mut cat, vehicle, auto, truck) = vehicle_schema();
        let err = SchemaChange::DropAttribute { class: auto, name: "weight".into() }
            .apply(&mut cat)
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaInvariant(_)));
        let effect = SchemaChange::DropAttribute { class: vehicle, name: "weight".into() }
            .apply(&mut cat)
            .unwrap();
        match effect {
            ChangeEffect::AttributeDropped { classes, .. } => {
                assert_eq!(classes, vec![vehicle, auto, truck]);
            }
            other => panic!("unexpected effect {other:?}"),
        }
        assert!(cat.resolve(truck).unwrap().attr("weight").is_none());
    }

    #[test]
    fn rename_attribute_keeps_id() {
        let (mut cat, vehicle, auto, _) = vehicle_schema();
        let id_before = cat.resolve(auto).unwrap().attr("weight").unwrap().id;
        SchemaChange::RenameAttribute {
            class: vehicle,
            old: "weight".into(),
            new: "mass".into(),
        }
        .apply(&mut cat)
        .unwrap();
        let resolved = cat.resolve(auto).unwrap();
        assert!(resolved.attr("weight").is_none());
        assert_eq!(resolved.attr("mass").unwrap().id, id_before);
    }

    #[test]
    fn rename_to_existing_name_rejected() {
        let (mut cat, vehicle, ..) = vehicle_schema();
        SchemaChange::AddAttribute { class: vehicle, spec: AttrSpec::new("color", string()) }
            .apply(&mut cat)
            .unwrap();
        let err = SchemaChange::RenameAttribute {
            class: vehicle,
            old: "color".into(),
            new: "weight".into(),
        }
        .apply(&mut cat)
        .unwrap_err();
        assert!(matches!(err, DbError::AlreadyExists(_)));
    }

    #[test]
    fn change_default_validates_domain() {
        let (mut cat, vehicle, ..) = vehicle_schema();
        SchemaChange::ChangeDefault {
            class: vehicle,
            name: "weight".into(),
            default: Value::Int(1000),
        }
        .apply(&mut cat)
        .unwrap();
        assert_eq!(
            cat.resolve(vehicle).unwrap().attr("weight").unwrap().default,
            Value::Int(1000)
        );
        let err = SchemaChange::ChangeDefault {
            class: vehicle,
            name: "weight".into(),
            default: Value::str("heavy"),
        }
        .apply(&mut cat)
        .unwrap_err();
        assert!(matches!(err, DbError::DomainViolation { .. }));
    }

    #[test]
    fn generalize_domain_but_never_narrow() {
        let mut cat = Catalog::new();
        let vehicle = cat.create_class("Vehicle", &[], vec![]).unwrap();
        let truck = cat.create_class("Truck", &[vehicle], vec![]).unwrap();
        let fleet = cat
            .create_class("Fleet", &[], vec![AttrSpec::new("flagship", Domain::Class(truck))])
            .unwrap();
        // Truck -> Vehicle is a generalization: allowed.
        SchemaChange::GeneralizeDomain {
            class: fleet,
            name: "flagship".into(),
            domain: Domain::Class(vehicle),
        }
        .apply(&mut cat)
        .unwrap();
        // Back to Truck would narrow: rejected.
        let err = SchemaChange::GeneralizeDomain {
            class: fleet,
            name: "flagship".into(),
            domain: Domain::Class(truck),
        }
        .apply(&mut cat)
        .unwrap_err();
        assert!(matches!(err, DbError::SchemaInvariant(_)));
    }

    #[test]
    fn add_superclass_gains_attributes() {
        let (mut cat, _, auto, _) = vehicle_schema();
        let powered = cat
            .create_class("Powered", &[], vec![AttrSpec::new("horsepower", int())])
            .unwrap();
        SchemaChange::AddSuperclass { class: auto, superclass: powered }
            .apply(&mut cat)
            .unwrap();
        let resolved = cat.resolve(auto).unwrap();
        assert!(resolved.attr("horsepower").is_some());
        assert!(resolved.attr("weight").is_some(), "existing inheritance kept");
        assert!(cat.validate().is_empty());
    }

    #[test]
    fn add_superclass_cycle_rejected() {
        let (mut cat, vehicle, auto, _) = vehicle_schema();
        let err = SchemaChange::AddSuperclass { class: vehicle, superclass: auto }
            .apply(&mut cat)
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaInvariant(_)));
        assert!(cat.validate().is_empty(), "catalog unchanged after rejection");
    }

    #[test]
    fn add_conflicting_superclass_rolls_back() {
        let mut cat = Catalog::new();
        let a = cat.create_class("A", &[], vec![AttrSpec::new("x", int())]).unwrap();
        let b = cat.create_class("B", &[], vec![AttrSpec::new("x", string())]).unwrap();
        let c = cat.create_class("C", &[a], vec![]).unwrap();
        let err = SchemaChange::AddSuperclass { class: c, superclass: b }
            .apply(&mut cat)
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaInvariant(_)));
        assert_eq!(cat.class(c).unwrap().supers, vec![a], "rolled back");
        assert!(cat.validate().is_empty());
    }

    #[test]
    fn drop_superclass_loses_attributes() {
        let (mut cat, vehicle, auto, _) = vehicle_schema();
        SchemaChange::DropSuperclass { class: auto, superclass: vehicle }
            .apply(&mut cat)
            .unwrap();
        assert!(cat.resolve(auto).unwrap().attr("weight").is_none());
        assert!(!cat.is_subclass(auto, vehicle));
        // Subtree of Vehicle no longer contains Automobile.
        assert!(!cat.subtree(vehicle).unwrap().contains(&auto));
    }

    #[test]
    fn rename_class() {
        let (mut cat, vehicle, ..) = vehicle_schema();
        SchemaChange::RenameClass { class: vehicle, new: "Conveyance".into() }
            .apply(&mut cat)
            .unwrap();
        assert_eq!(cat.class_id("Conveyance").unwrap(), vehicle);
        assert!(cat.class_id("Vehicle").is_err());
        let err = SchemaChange::RenameClass { class: vehicle, new: "Truck".into() }
            .apply(&mut cat)
            .unwrap_err();
        assert!(matches!(err, DbError::AlreadyExists(_)));
    }

    #[test]
    fn drop_class_reparents_subclasses() {
        let mut cat = Catalog::new();
        let root = cat.create_class("Root", &[], vec![AttrSpec::new("r", int())]).unwrap();
        let mid = cat.create_class("Mid", &[root], vec![AttrSpec::new("m", int())]).unwrap();
        let leaf = cat.create_class("Leaf", &[mid], vec![]).unwrap();
        let effect = SchemaChange::DropClass { class: mid }.apply(&mut cat).unwrap();
        assert_eq!(
            effect,
            ChangeEffect::ClassDropped { class: mid, reparented: vec![leaf] }
        );
        // Leaf now inherits from Root directly; `m` is gone, `r` remains.
        let resolved = cat.resolve(leaf).unwrap();
        assert!(resolved.attr("r").is_some());
        assert!(resolved.attr("m").is_none());
        assert_eq!(cat.class(leaf).unwrap().supers, vec![root]);
        assert!(cat.validate().is_empty());
    }

    #[test]
    fn drop_class_used_as_domain_rejected() {
        let mut cat = Catalog::new();
        let company = cat.create_class("Company", &[], vec![]).unwrap();
        let _vehicle = cat
            .create_class(
                "Vehicle",
                &[],
                vec![AttrSpec::new("manufacturer", Domain::Class(company))],
            )
            .unwrap();
        let err = SchemaChange::DropClass { class: company }.apply(&mut cat).unwrap_err();
        assert!(matches!(err, DbError::SchemaInvariant(_)));
        assert!(cat.class_id("Company").is_ok(), "still present");
        assert!(cat.validate().is_empty());
    }
}
