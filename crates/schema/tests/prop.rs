//! Property tests: random sequences of schema changes never leave the
//! catalog violating its invariants (\[BANE87\]'s central requirement),
//! and resolution laws hold on random hierarchies.

use orion_schema::{AttrSpec, Catalog, SchemaChange};
use orion_types::{ClassId, Domain, PrimitiveType, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    CreateClass { supers: Vec<usize>, attrs: Vec<u8> },
    AddAttribute { class: usize, name: u8 },
    DropAttribute { class: usize, name: u8 },
    RenameAttribute { class: usize, from: u8, to: u8 },
    AddSuperclass { class: usize, superclass: usize },
    DropSuperclass { class: usize, superclass: usize },
    AddMethod { class: usize, selector: u8 },
    DropClass { class: usize },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (proptest::collection::vec(any::<usize>(), 0..3), proptest::collection::vec(any::<u8>(), 0..3))
            .prop_map(|(supers, attrs)| Op::CreateClass { supers, attrs }),
        (any::<usize>(), any::<u8>()).prop_map(|(class, name)| Op::AddAttribute { class, name }),
        (any::<usize>(), any::<u8>()).prop_map(|(class, name)| Op::DropAttribute { class, name }),
        (any::<usize>(), any::<u8>(), any::<u8>())
            .prop_map(|(class, from, to)| Op::RenameAttribute { class, from, to }),
        (any::<usize>(), any::<usize>())
            .prop_map(|(class, superclass)| Op::AddSuperclass { class, superclass }),
        (any::<usize>(), any::<usize>())
            .prop_map(|(class, superclass)| Op::DropSuperclass { class, superclass }),
        (any::<usize>(), any::<u8>()).prop_map(|(class, selector)| Op::AddMethod { class, selector }),
        any::<usize>().prop_map(|class| Op::DropClass { class }),
    ];
    proptest::collection::vec(op, 1..60)
}

fn pick(classes: &[ClassId], raw: usize) -> Option<ClassId> {
    if classes.is_empty() {
        None
    } else {
        Some(classes[raw % classes.len()])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever mix of changes is applied — accepted or rejected — the
    /// catalog's invariants hold afterwards.
    #[test]
    fn random_evolution_preserves_invariants(ops in arb_ops()) {
        let mut cat = Catalog::new();
        let mut classes: Vec<ClassId> = Vec::new();
        let mut next_class = 0usize;
        let int = Domain::Primitive(PrimitiveType::Int);

        for op in ops {
            match op {
                Op::CreateClass { supers, attrs } => {
                    let supers: Vec<ClassId> = {
                        let mut s: Vec<ClassId> =
                            supers.iter().filter_map(|r| pick(&classes, *r)).collect();
                        s.dedup();
                        s
                    };
                    let specs = attrs
                        .iter()
                        .map(|a| {
                            AttrSpec::new(format!("a{}", a % 6), int.clone())
                                .with_default(Value::Int(*a as i64))
                        })
                        .collect();
                    let name = format!("C{next_class}");
                    next_class += 1;
                    if let Ok(id) = cat.create_class(&name, &supers, specs) {
                        classes.push(id);
                    }
                }
                Op::AddAttribute { class, name } => {
                    if let Some(c) = pick(&classes, class) {
                        let _ = SchemaChange::AddAttribute {
                            class: c,
                            spec: AttrSpec::new(format!("a{}", name % 6), int.clone()),
                        }
                        .apply(&mut cat);
                    }
                }
                Op::DropAttribute { class, name } => {
                    if let Some(c) = pick(&classes, class) {
                        let _ = SchemaChange::DropAttribute {
                            class: c,
                            name: format!("a{}", name % 6),
                        }
                        .apply(&mut cat);
                    }
                }
                Op::RenameAttribute { class, from, to } => {
                    if let Some(c) = pick(&classes, class) {
                        let _ = SchemaChange::RenameAttribute {
                            class: c,
                            old: format!("a{}", from % 6),
                            new: format!("a{}", to % 6),
                        }
                        .apply(&mut cat);
                    }
                }
                Op::AddSuperclass { class, superclass } => {
                    if let (Some(c), Some(s)) = (pick(&classes, class), pick(&classes, superclass)) {
                        if c != s {
                            let _ = SchemaChange::AddSuperclass { class: c, superclass: s }
                                .apply(&mut cat);
                        }
                    }
                }
                Op::DropSuperclass { class, superclass } => {
                    if let (Some(c), Some(s)) = (pick(&classes, class), pick(&classes, superclass)) {
                        let _ = SchemaChange::DropSuperclass { class: c, superclass: s }
                            .apply(&mut cat);
                    }
                }
                Op::AddMethod { class, selector } => {
                    if let Some(c) = pick(&classes, class) {
                        let _ = cat.add_method(c, &format!("m{}", selector % 6), 0);
                    }
                }
                Op::DropClass { class } => {
                    if let Some(c) = pick(&classes, class) {
                        if (SchemaChange::DropClass { class: c }).apply(&mut cat).is_ok() {
                            classes.retain(|x| *x != c);
                        }
                    }
                }
            }
            let problems = cat.validate();
            prop_assert!(problems.is_empty(), "invariants violated: {problems:?}");
        }
    }

    /// Subtyping laws on random hierarchies: reflexivity, transitivity,
    /// antisymmetry, and subtree/ancestor duality.
    #[test]
    fn hierarchy_laws(edges in proptest::collection::vec((any::<usize>(), any::<usize>()), 0..20)) {
        let mut cat = Catalog::new();
        let classes: Vec<ClassId> =
            (0..8).map(|i| cat.create_class(&format!("C{i}"), &[], vec![]).unwrap()).collect();
        for (a, b) in edges {
            let sub = classes[a % classes.len()];
            let sup = classes[b % classes.len()];
            if sub != sup {
                let _ = SchemaChange::AddSuperclass { class: sub, superclass: sup }
                    .apply(&mut cat);
            }
        }
        for &a in &classes {
            prop_assert!(cat.is_subclass(a, a), "reflexive");
            let subtree = cat.subtree(a).unwrap();
            for &b in subtree.iter() {
                // Subtree/ancestor duality.
                prop_assert!(cat.is_subclass(b, a));
                if b != a {
                    prop_assert!(cat.ancestors(b).unwrap().contains(&a));
                    // Antisymmetry (the DAG stayed acyclic).
                    prop_assert!(!cat.is_subclass(a, b), "cycle between {a} and {b}");
                }
            }
            for &b in &classes {
                for &c in &classes {
                    if cat.is_subclass(a, b) && cat.is_subclass(b, c) {
                        prop_assert!(cat.is_subclass(a, c), "transitive");
                    }
                }
            }
        }
    }
}
