//! Pipelining, admission control, and batch semantics over real
//! sockets: the contracts PR 9's evented core must keep.

use orion_core::{AttrSpec, Database, DbConfig, Domain, PrimitiveType, Value};
use orion_net::frame::{read_frame, MAX_FRAME};
use orion_net::{Client, Request, Response, Server, ServerConfig};
use orion_types::{DbError, Oid};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn counter_db() -> (Arc<Database>, Vec<Oid>) {
    let db = Database::open_in_memory();
    db.create_class(
        "Counter",
        &[],
        vec![AttrSpec::new("n", Domain::Primitive(PrimitiveType::Int))],
    )
    .unwrap();
    let tx = db.begin();
    let oids: Vec<Oid> = (0..8)
        .map(|i| db.create_object(&tx, "Counter", vec![("n", Value::Int(i))]).unwrap())
        .collect();
    db.commit(tx).unwrap();
    (Arc::new(db), oids)
}

#[test]
fn replies_come_back_in_fifo_order_under_a_64_deep_pipeline() {
    let (db, oids) = counter_db();
    let server = Server::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut pipe = client.pipeline().unwrap();
    // 64 distinct reads, all in flight before any reply is read.
    for k in 0..64u64 {
        let oid = oids[(k % oids.len() as u64) as usize];
        pipe.send(&Request::Get { oid, attr: "n".into() }).unwrap();
    }
    assert_eq!(pipe.outstanding(), 64);
    for k in 0..64i64 {
        match pipe.recv().unwrap() {
            Response::Value(Value::Int(n)) => {
                assert_eq!(n, k % 8, "reply {k} answers send {k}, in order")
            }
            other => panic!("expected Value, got {other:?}"),
        }
    }
    assert_eq!(pipe.outstanding(), 0);
    drop(pipe);
    client.ping().unwrap(); // the session is still clean
    server.shutdown();
}

#[test]
fn a_mid_pipeline_error_does_not_poison_later_replies() {
    let (db, oids) = counter_db();
    let server = Server::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut pipe = client.pipeline().unwrap();
    pipe.send(&Request::Get { oid: oids[0], attr: "n".into() }).unwrap();
    pipe.send(&Request::Get { oid: oids[1], attr: "bogus".into() }).unwrap(); // fails
    pipe.send(&Request::Get { oid: oids[2], attr: "n".into() }).unwrap();
    assert!(matches!(pipe.recv().unwrap(), Response::Value(Value::Int(0))));
    assert!(matches!(pipe.recv().unwrap(), Response::Err(DbError::UnknownAttribute { .. })));
    assert!(
        matches!(pipe.recv().unwrap(), Response::Value(Value::Int(2))),
        "the reply after the failed request is intact and in position"
    );
    drop(pipe);
    server.shutdown();
}

#[test]
fn disconnect_mid_pipeline_rolls_back_the_session_tx() {
    let config = DbConfig::builder().lock_timeout(Duration::from_secs(5)).build().unwrap();
    let db = Database::with_config(config);
    db.create_class(
        "Counter",
        &[],
        vec![AttrSpec::new("n", Domain::Primitive(PrimitiveType::Int))],
    )
    .unwrap();
    let db = Arc::new(db);
    let tx = db.begin();
    let oid = db.create_object(&tx, "Counter", vec![("n", Value::Int(7))]).unwrap();
    db.commit(tx).unwrap();

    let server = Server::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut writer = Client::connect(addr).unwrap();
    writer.begin().unwrap();
    let mut pipe = writer.pipeline().unwrap();
    // An uncommitted pipelined write inside the explicit transaction;
    // its X lock is held once the reply confirms it landed.
    pipe.send(&Request::Set { oid, attr: "n".into(), value: Value::Int(99) }).unwrap();
    assert!(matches!(pipe.recv().unwrap(), Response::Ok));
    // More writes go out, but the client vanishes with their replies
    // (and the transaction) still in flight.
    pipe.send(&Request::Set { oid, attr: "n".into(), value: Value::Int(100) }).unwrap();
    drop(pipe);
    drop(writer);

    // The server must notice the disconnect and roll the session
    // transaction back, releasing the lock: a fresh write succeeds well
    // within the lock timeout, and the uncommitted 99/100 are gone.
    let mut other = Client::connect(addr).unwrap();
    other.set(oid, "n", Value::Int(1)).unwrap();
    assert_eq!(other.get(oid, "n").unwrap(), Value::Int(1));
    server.shutdown();
}

#[test]
fn teardown_behind_a_queued_request_still_honors_disconnect_rollback() {
    // Regression: a connection that dies while its admitted request is
    // still *queued* behind a busy executor must not roll its session
    // back ahead of that request. The old teardown probed the session
    // lock — which a queued (not yet running) request does not hold —
    // rolled back inline, and the queued write then executed in
    // auto-commit, durably committing a fragment of the rolled-back
    // transaction.
    let config = DbConfig::builder().lock_timeout(Duration::from_secs(5)).build().unwrap();
    let db = Database::with_config(config);
    db.create_class(
        "Counter",
        &[],
        vec![AttrSpec::new("n", Domain::Primitive(PrimitiveType::Int))],
    )
    .unwrap();
    let db = Arc::new(db);
    let tx = db.begin();
    let oid = db.create_object(&tx, "Counter", vec![("n", Value::Int(7))]).unwrap();
    db.commit(tx).unwrap();

    // The gate parks the single executor inside a Ping's hook, so the
    // victim's next write sits in the executor queue with no lock held.
    let gate = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    let entered = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let (hook_gate, hook_entered) = (Arc::clone(&gate), Arc::clone(&entered));
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            io_threads: 1,
            read_timeout: Duration::from_millis(200),
            request_hook: Some(Arc::new(move |request: &Request| {
                if matches!(request, Request::Ping) {
                    hook_entered.store(true, std::sync::atomic::Ordering::Release);
                    let (lock, cv) = &*hook_gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                }
            })),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let frame_into = |blob: &mut Vec<u8>, req: &Request| {
        let payload = req.encode();
        blob.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        blob.extend_from_slice(&payload);
    };
    use std::io::Write as _;

    // Victim session: explicit transaction with one confirmed write.
    let mut victim = TcpStream::connect(addr).unwrap();
    victim.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut blob = Vec::new();
    frame_into(&mut blob, &Request::Hello { principal: None });
    frame_into(&mut blob, &Request::Begin);
    frame_into(&mut blob, &Request::Set { oid, attr: "n".into(), value: Value::Int(99) });
    victim.write_all(&blob).unwrap();
    assert!(matches!(
        Response::decode(&read_frame(&mut victim, MAX_FRAME).unwrap().unwrap()).unwrap(),
        Response::Hello { .. }
    ));
    assert!(matches!(
        Response::decode(&read_frame(&mut victim, MAX_FRAME).unwrap().unwrap()).unwrap(),
        Response::Txn { .. }
    ));
    assert!(matches!(
        Response::decode(&read_frame(&mut victim, MAX_FRAME).unwrap().unwrap()).unwrap(),
        Response::Ok
    ));

    // Park the executor behind the gate.
    let mut blocker = Client::connect(addr).unwrap();
    let mut bpipe = blocker.pipeline().unwrap();
    bpipe.send(&Request::Ping).unwrap();
    while !entered.load(std::sync::atomic::Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(5));
    }

    // A second write is admitted and queued behind the parked Ping;
    // two stray bytes open a frame that never completes, so the
    // mid-frame stall clock tears the victim down while its write is
    // still waiting for the executor.
    let mut blob = Vec::new();
    frame_into(&mut blob, &Request::Set { oid, attr: "n".into(), value: Value::Int(100) });
    blob.extend_from_slice(&[0xAA, 0xBB]);
    victim.write_all(&blob).unwrap();
    std::thread::sleep(Duration::from_millis(400)); // > read_timeout

    // Release the executor: the Ping answers, then the victim's queued
    // write reaches the executor on a session that is already gone.
    {
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
    assert!(matches!(bpipe.recv().unwrap(), Response::Pong));
    drop(bpipe);

    // Give the queued write every chance to (incorrectly) land, then
    // check the transaction rolled back whole: no 99, no 100.
    std::thread::sleep(Duration::from_millis(300));
    let probe = db.begin();
    assert_eq!(
        db.get(&probe, oid, "n").unwrap(),
        Value::Int(7),
        "disconnect must roll back the whole transaction, including writes \
         that were still queued when the connection died"
    );
    db.rollback(probe).unwrap();

    // And the rollback released the victim's locks.
    blocker.set(oid, "n", Value::Int(1)).unwrap();
    assert_eq!(blocker.get(oid, "n").unwrap(), Value::Int(1));
    server.shutdown();
}

#[test]
fn pipelined_clients_match_the_serial_client_byte_for_byte() {
    let (db, oids) = counter_db();
    // Enough admission headroom that the 6 × 32-deep bursts are never
    // shed (shedding is exercised separately below).
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { workers: 6, exec_queue_depth: 512, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();
    let query = "select c from Counter c where c.n >= 2 order by c.n asc";

    // Serial baseline: one request/response at a time.
    let serial_bytes = {
        let mut client = Client::connect(addr).unwrap();
        let r = client.query(query).unwrap();
        Response::Query { rows: r.rows, oids: r.oids }.encode()
    };

    // Six concurrent connections, each pipelining a mixed burst.
    let handles: Vec<_> = (0..6)
        .map(|c| {
            let serial_bytes = serial_bytes.clone();
            let oids = oids.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut pipe = client.pipeline().unwrap();
                for k in 0..16 {
                    pipe.send(&Request::Get {
                        oid: oids[(c + k) % oids.len()],
                        attr: "n".into(),
                    })
                    .unwrap();
                    pipe.send_query(query).unwrap();
                }
                for k in 0..16 {
                    match pipe.recv().unwrap() {
                        Response::Value(Value::Int(n)) => {
                            assert_eq!(n as usize, (c + k) % oids.len())
                        }
                        other => panic!("expected Value, got {other:?}"),
                    }
                    let r = pipe.recv_query().unwrap();
                    let bytes = Response::Query { rows: r.rows, oids: r.oids }.encode();
                    assert_eq!(bytes, serial_bytes, "pipelined leg differs from serial");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("pipelined client");
    }
    server.shutdown();
}

#[test]
fn admission_control_sheds_with_server_busy_and_never_hangs() {
    let (db, oids) = counter_db();
    // A tiny pipeline cap on a single worker: a deep burst must shed
    // its tail, answer everything, and kill nothing in flight.
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { workers: 1, max_pipeline: 4, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    let mut pipe = client.pipeline().unwrap();
    let burst = 64;
    for _ in 0..burst {
        pipe.send(&Request::Get { oid: oids[0], attr: "n".into() }).unwrap();
    }
    let mut served = 0u32;
    let mut shed = 0u32;
    for _ in 0..burst {
        match pipe.recv().unwrap() {
            Response::Value(Value::Int(0)) => served += 1,
            Response::Err(DbError::ServerBusy) => shed += 1,
            other => panic!("expected Value or ServerBusy, got {other:?}"),
        }
    }
    assert_eq!(served + shed, burst, "every request answered, none dropped");
    assert!(shed > 0, "a 64-deep burst over a 4-deep cap must shed");
    assert!(served >= 4, "admitted requests are served, not killed");
    drop(pipe);
    // The session survives shedding.
    assert_eq!(client.get(oids[0], "n").unwrap(), Value::Int(0));

    let stats = db.stats();
    assert!(stats.net.requests_shed >= u64::from(shed));
    assert!(stats.net.pipeline_depth.count >= u64::from(burst));
    server.shutdown();
}

#[test]
fn batch_is_one_round_trip_and_atomic_outside_a_tx() {
    let (db, oids) = counter_db();
    let server = Server::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // A successful batch: per-op results in order.
    let results = client
        .batch(vec![
            Request::Set { oid: oids[0], attr: "n".into(), value: Value::Int(10) },
            Request::Get { oid: oids[0], attr: "n".into() },
            Request::CreateObject { class: "Counter".into(), attrs: vec![("n".into(), Value::Int(42))] },
        ])
        .unwrap();
    assert!(matches!(results[0], Response::Ok));
    assert!(matches!(results[1], Response::Value(Value::Int(10))));
    let created = match results[2] {
        Response::Created { oid } => oid,
        ref other => panic!("expected Created, got {other:?}"),
    };
    assert_eq!(client.get(created, "n").unwrap(), Value::Int(42));

    // A failing batch rolls back as a unit: the first Set must not
    // survive the second op's failure.
    let err = client
        .batch(vec![
            Request::Set { oid: oids[1], attr: "n".into(), value: Value::Int(77) },
            Request::Get { oid: oids[1], attr: "bogus".into() },
        ])
        .unwrap_err();
    assert!(matches!(err, DbError::UnknownAttribute { .. }), "{err:?}");
    assert_eq!(client.get(oids[1], "n").unwrap(), Value::Int(1), "batch rolled back atomically");

    // Non-DML inside a batch is a protocol error, not an execution.
    let err = client.batch(vec![Request::Ping]).unwrap_err();
    assert!(matches!(err, DbError::Protocol(_)), "{err:?}");
    server.shutdown();
}

#[test]
fn event_loop_metrics_are_monotonic_and_rendered() {
    let (db, oids) = counter_db();
    let server = Server::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let before = db.stats().net;
    let mut pipe = client.pipeline().unwrap();
    for _ in 0..8 {
        pipe.send(&Request::Get { oid: oids[0], attr: "n".into() }).unwrap();
    }
    for _ in 0..8 {
        pipe.recv().unwrap();
    }
    drop(pipe);
    let after = db.stats().net;

    // Counters and histogram counts only move forward.
    assert!(after.requests >= before.requests + 8);
    assert!(after.readiness_wakeups > before.readiness_wakeups, "traffic means wakeups");
    assert!(after.requests_shed >= before.requests_shed);
    assert!(after.pipeline_depth.count >= before.pipeline_depth.count + 8);
    assert!(after.request_latency.count >= before.request_latency.count + 8);
    assert!(after.connections_per_worker >= 1, "one live connection registers on a worker");

    // And a second pass is monotonic over the first.
    client.ping().unwrap();
    let third = db.stats().net;
    assert!(third.requests > after.requests);
    assert!(third.readiness_wakeups >= after.readiness_wakeups);
    assert!(third.pipeline_depth.count >= after.pipeline_depth.count);

    // All new series reach the Prometheus rendering.
    let scrape = client.stats_prometheus().unwrap();
    for series in [
        "orion_net_pipeline_depth",
        "orion_net_requests_shed_total",
        "orion_net_readiness_wakeups_total",
        "orion_net_readiness_wakeups_per_sec",
        "orion_net_connections_per_worker",
    ] {
        assert!(scrape.contains(series), "scrape is missing {series}");
    }
    server.shutdown();
}

#[test]
fn raw_pipelined_frames_in_one_write_are_all_answered() {
    // The decoder must handle many frames coalesced into one TCP
    // segment — exactly what an aggressive pipelining client produces.
    let (db, oids) = counter_db();
    let server = Server::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // Handshake plus ten reads, coalesced into a single write.
    let mut blob = Vec::new();
    let frame_into = |blob: &mut Vec<u8>, req: &Request| {
        let payload = req.encode();
        blob.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        blob.extend_from_slice(&payload);
    };
    frame_into(&mut blob, &Request::Hello { principal: None });
    for _ in 0..10 {
        frame_into(&mut blob, &Request::Get { oid: oids[3], attr: "n".into() });
    }
    use std::io::Write as _;
    raw.write_all(&blob).unwrap();

    let hello = read_frame(&mut raw, MAX_FRAME).unwrap().expect("hello ack");
    assert!(matches!(Response::decode(&hello).unwrap(), Response::Hello { .. }));
    for _ in 0..10 {
        let reply = read_frame(&mut raw, MAX_FRAME).unwrap().expect("a value reply");
        assert!(matches!(Response::decode(&reply).unwrap(), Response::Value(Value::Int(3))));
    }
    server.shutdown();
}
