//! End-to-end tests: a real server on an ephemeral port, real sockets,
//! concurrent clients.

use orion_core::{AttrSpec, Database, DbConfig, Domain, PrimitiveType, Value};
use orion_net::frame::{read_frame, write_frame, MAX_FRAME};
use orion_net::{Client, ClientConfig, Request, Response, Server, ServerConfig};
use orion_types::{DbError, Oid};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// The Figure 1 schema and data: vehicles (a small hierarchy) made by
/// companies in various cities.
fn fleet_db(config: DbConfig) -> (Arc<Database>, Oid) {
    let db = Database::with_config(config);
    let str_dom = || Domain::Primitive(PrimitiveType::Str);
    let int_dom = || Domain::Primitive(PrimitiveType::Int);
    db.create_class(
        "Company",
        &[],
        vec![AttrSpec::new("name", str_dom()), AttrSpec::new("location", str_dom())],
    )
    .unwrap();
    let company = db.with_catalog(|c| c.class_id("Company")).unwrap();
    db.create_class(
        "Vehicle",
        &[],
        vec![
            AttrSpec::new("weight", int_dom()),
            AttrSpec::new("manufacturer", Domain::Class(company)),
        ],
    )
    .unwrap();
    db.create_class("Truck", &["Vehicle"], vec![AttrSpec::new("payload", int_dom())]).unwrap();
    let tx = db.begin();
    let motorco = db
        .create_object(
            &tx,
            "Company",
            vec![("name", Value::str("MotorCo")), ("location", Value::str("Detroit"))],
        )
        .unwrap();
    let chipco = db
        .create_object(
            &tx,
            "Company",
            vec![("name", Value::str("ChipCo")), ("location", Value::str("Austin"))],
        )
        .unwrap();
    let mut first_vehicle = None;
    for i in 1..=10i64 {
        let (class, manu) = if i % 2 == 0 { ("Truck", motorco) } else { ("Vehicle", chipco) };
        let oid = db
            .create_object(
                &tx,
                class,
                vec![("weight", Value::Int(1000 * i)), ("manufacturer", Value::Ref(manu))],
            )
            .unwrap();
        first_vehicle.get_or_insert(oid);
    }
    db.commit(tx).unwrap();
    (Arc::new(db), first_vehicle.unwrap())
}

const FIG1_QUERY: &str = "select v from Vehicle* v \
     where v.weight > 7500 and v.manufacturer.location = \"Detroit\" \
     order by v.weight asc";

#[test]
fn concurrent_clients_get_byte_identical_results() {
    let (db, _) = fleet_db(DbConfig::default());
    let expected = {
        let tx = db.begin();
        let r = db.query(&tx, FIG1_QUERY).unwrap();
        db.commit(tx).unwrap();
        r
    };
    assert!(!expected.oids.is_empty(), "fixture matches the Figure 1 query");
    let expected_bytes =
        Response::Query { rows: expected.rows.clone(), oids: expected.oids.clone() }.encode();

    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { workers: 6, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..6)
        .map(|_| {
            let expected_bytes = expected_bytes.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..5 {
                    let got = client.query(FIG1_QUERY).unwrap();
                    let got_bytes =
                        Response::Query { rows: got.rows, oids: got.oids }.encode();
                    assert_eq!(got_bytes, expected_bytes, "wire result differs from facade");
                }
                client.explain(FIG1_QUERY).unwrap()
            })
        })
        .collect();
    let tx = db.begin();
    let in_process_plan = db.explain(&tx, FIG1_QUERY).unwrap().to_string();
    db.commit(tx).unwrap();
    for h in handles {
        let remote_plan = h.join().expect("client thread");
        assert_eq!(remote_plan, in_process_plan);
    }
    server.shutdown();
}

#[test]
fn lock_conflict_surfaces_as_lock_timeout_over_the_wire() {
    let config = DbConfig::builder().lock_timeout(Duration::from_millis(200)).build().unwrap();
    let (db, vehicle) = fleet_db(config);
    let server = Server::bind(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut holder = Client::connect(addr).unwrap();
    let holder_tx = holder.begin().unwrap();
    holder.set(vehicle, "weight", Value::Int(9999)).unwrap(); // X lock held

    let mut waiter = Client::connect(addr).unwrap();
    waiter.begin().unwrap();
    match waiter.set(vehicle, "weight", Value::Int(1)) {
        Err(DbError::LockTimeout { txn, what }) => {
            assert_ne!(txn, holder_tx, "the waiter times out, not the holder");
            assert!(!what.is_empty());
        }
        other => panic!("expected LockTimeout over the wire, got {other:?}"),
    }
    waiter.rollback().unwrap();
    holder.commit().unwrap();

    // The holder's committed write is visible to a fresh reader.
    let mut reader = Client::connect(addr).unwrap();
    assert_eq!(reader.get(vehicle, "weight").unwrap(), Value::Int(9999));
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_request() {
    let config = DbConfig::builder().lock_timeout(Duration::from_secs(3)).build().unwrap();
    let (db, vehicle) = fleet_db(config);
    let server = Server::bind(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // The holder takes an X lock and then goes quiet.
    let mut holder = Client::connect(addr).unwrap();
    holder.begin().unwrap();
    holder.set(vehicle, "weight", Value::Int(1)).unwrap();

    // The waiter's read is now in flight, blocked on that lock.
    let waiter = std::thread::spawn(move || {
        let mut client = Client::connect_with(
            addr,
            ClientConfig { reconnect: false, ..ClientConfig::default() },
        )
        .unwrap();
        client.get(vehicle, "weight")
    });
    std::thread::sleep(Duration::from_millis(300));

    // Shutdown must let the waiter's request finish and deliver its
    // response: either the value (holder evicted first, its uncommitted
    // write rolled back, lock released) or a LockTimeout — never a dead
    // socket.
    server.shutdown();
    match waiter.join().expect("waiter thread") {
        Ok(v) => assert_eq!(v, Value::Int(1000), "the holder's write rolled back"),
        Err(DbError::LockTimeout { .. }) => {}
        Err(other) => panic!("drained request lost its response: {other:?}"),
    }
}

#[test]
fn connection_cap_overflow_is_rejected_with_server_busy() {
    let (db, _) = fleet_db(DbConfig::default());
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { max_connections: 2, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    // Two sessions fill the cap (pinged, so both are fully admitted —
    // the acceptor is single-threaded, so the count is settled before
    // the next accept).
    let mut a = Client::connect(addr).unwrap();
    a.ping().unwrap();
    let mut b = Client::connect(addr).unwrap();
    b.ping().unwrap();
    // Over capacity: turned away at the door with a reason, not a slam.
    let mut rejected = TcpStream::connect(addr).unwrap();
    let payload = read_frame(&mut rejected, MAX_FRAME).unwrap().expect("a rejection frame");
    match Response::decode(&payload).unwrap() {
        Response::Err(DbError::ServerBusy) => {}
        other => panic!("expected ServerBusy, got {other:?}"),
    }
    assert!(db.stats().net.busy_rejections >= 1);
    // The admitted sessions were untouched by the rejection.
    a.ping().unwrap();
    b.ping().unwrap();
    server.shutdown();
}

#[test]
fn idle_sessions_are_evicted_and_the_client_reconnects() {
    let (db, _) = fleet_db(DbConfig::default());
    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { idle_timeout: Duration::from_millis(200), ..ServerConfig::default() },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    std::thread::sleep(Duration::from_millis(600)); // evicted meanwhile
    client.ping().unwrap(); // transparently re-dials
    assert!(db.stats().net.timeouts >= 1, "eviction counts as a timeout");

    let mut rigid = Client::connect_with(
        server.local_addr(),
        ClientConfig { reconnect: false, ..ClientConfig::default() },
    )
    .unwrap();
    rigid.ping().unwrap();
    std::thread::sleep(Duration::from_millis(600));
    match rigid.ping() {
        Err(DbError::Net(_)) => {}
        other => panic!("reconnect disabled must surface the dead socket, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn protocol_violations_are_answered_not_dropped() {
    let (db, _) = fleet_db(DbConfig::default());
    let server = Server::bind(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // A request before Hello is a protocol error.
    let mut raw = TcpStream::connect(addr).unwrap();
    write_frame(&mut raw, &Request::Ping.encode()).unwrap();
    let payload = read_frame(&mut raw, MAX_FRAME).unwrap().expect("an error frame");
    assert!(matches!(Response::decode(&payload).unwrap(), Response::Err(DbError::Protocol(_))));

    // So is a second Hello on an open session.
    let mut raw = TcpStream::connect(addr).unwrap();
    write_frame(&mut raw, &Request::Hello { principal: None }.encode()).unwrap();
    let payload = read_frame(&mut raw, MAX_FRAME).unwrap().expect("a hello ack");
    assert!(matches!(Response::decode(&payload).unwrap(), Response::Hello { .. }));
    write_frame(&mut raw, &Request::Hello { principal: None }.encode()).unwrap();
    let payload = read_frame(&mut raw, MAX_FRAME).unwrap().expect("an error frame");
    assert!(matches!(Response::decode(&payload).unwrap(), Response::Err(DbError::Protocol(_))));
    server.shutdown();
}

#[test]
fn facade_errors_cross_the_wire_intact() {
    let (db, vehicle) = fleet_db(DbConfig::default());
    let server = Server::bind(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    match client.query("select v from Spaceship v") {
        Err(DbError::UnknownClass(name)) => assert_eq!(name, "Spaceship"),
        other => panic!("expected UnknownClass, got {other:?}"),
    }
    match client.get(vehicle, "wingspan") {
        Err(DbError::UnknownAttribute { class: _, attribute }) => {
            assert_eq!(attribute, "wingspan")
        }
        other => panic!("expected UnknownAttribute, got {other:?}"),
    }
    match client.checkout(vehicle) {
        Err(DbError::InvalidTxnState(_)) => {} // checkout needs an explicit tx
        other => panic!("expected InvalidTxnState, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn full_session_ddl_dml_checkout_checkin_over_the_wire() {
    let db = Arc::new(Database::open_in_memory());
    let server = Server::bind(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // DDL: a composite design hierarchy, created remotely.
    let cell_id = client
        .create_class(
            "Cell",
            &[],
            vec![AttrSpec::new("area", Domain::Primitive(PrimitiveType::Int))],
        )
        .unwrap();
    client
        .create_class(
            "Design",
            &[],
            vec![
                AttrSpec::new("title", Domain::Primitive(PrimitiveType::Str)),
                AttrSpec::new(
                    "cells",
                    Domain::set_of_class(orion_types::ClassId(cell_id)),
                )
                .composite(),
            ],
        )
        .unwrap();
    client
        .create_index(
            "design_title",
            orion_core::IndexKind::SingleClass,
            "Design",
            &["title"],
        )
        .unwrap();

    // DML in an explicit transaction.
    client.begin().unwrap();
    let design = client
        .create_object("Design", vec![("title", Value::str("alu64"))])
        .unwrap();
    client.commit().unwrap();

    // Checkout requires a transaction; edit the workspace, check it in.
    client.begin().unwrap();
    let mut workspace = client.checkout(design).unwrap();
    assert_eq!(workspace.len(), 1);
    for (_, attrs) in &mut workspace {
        for (name, value) in attrs.iter_mut() {
            if name == "title" {
                *value = Value::str("alu128");
            }
        }
    }
    client.checkin(workspace).unwrap();
    client.commit().unwrap();
    assert_eq!(client.get(design, "title").unwrap(), Value::str("alu128"));

    // The indexed query sees the committed edit.
    let hits = client
        .query("select d from Design d where d.title = \"alu128\"")
        .unwrap();
    assert_eq!(hits.oids, vec![design]);

    // The scrape reflects the traffic this session generated.
    let scrape = client.stats_prometheus().unwrap();
    assert!(scrape.contains("orion_net_requests_total"));
    assert!(!scrape.contains("orion_net_requests_total 0\n"), "request counter is live");
    assert!(scrape.contains("orion_net_connections 1"));
    server.shutdown();
    assert_eq!(db.stats().net.connections, 0, "gauge returns to zero after shutdown");
}

#[test]
fn panicking_handler_does_not_kill_the_worker_pool() {
    let (db, vehicle) = fleet_db(DbConfig::default());
    // A request hook that panics on Get: the panic unwinds out of the
    // session mid-dispatch, exactly like a handler bug would.
    let config = ServerConfig {
        workers: 2,
        request_hook: Some(Arc::new(|request: &Request| {
            if matches!(request, Request::Get { .. }) {
                panic!("injected handler panic");
            }
        })),
        ..ServerConfig::default()
    };
    let server = Server::bind(Arc::clone(&db), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    // Blow up more sessions than there are workers. Each panic costs
    // only that connection; with poisoning (or without catch_unwind)
    // the second worker death would hang every later connect.
    for _ in 0..3 {
        let mut client = Client::connect_with(
            addr,
            ClientConfig { reconnect: false, ..ClientConfig::default() },
        )
        .unwrap();
        let err = client.get(vehicle, "weight").unwrap_err();
        match err {
            DbError::Internal(msg) => assert!(msg.contains("panicked"), "{msg}"),
            DbError::Net(_) => {} // connection died before the reply: also acceptable
            other => panic!("unexpected error {other:?}"),
        }
    }

    // The pool still serves: fresh sessions run non-Get requests fine.
    for _ in 0..3 {
        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();
        assert!(!client.query(FIG1_QUERY).unwrap().oids.is_empty());
    }
    // And an open transaction interrupted by a panic rolled back: no
    // locks are stuck (a write to the same object succeeds promptly).
    let mut client = Client::connect(addr).unwrap();
    client.begin().unwrap();
    let err = client.get(vehicle, "weight").unwrap_err();
    assert!(matches!(err, DbError::Internal(_) | DbError::Net(_)), "{err:?}");
    drop(client);
    let tx = db.begin();
    db.set(&tx, vehicle, "weight", Value::Int(4321)).unwrap();
    db.commit(tx).unwrap();
    server.shutdown();
}
