//! The evented multi-client server: readiness-based I/O, request
//! pipelining, and admission control.
//!
//! Connections no longer own threads. A small set of event-loop
//! threads (`io_threads`) multiplexes every connection over
//! nonblocking sockets and a [`crate::poller::Poller`]; a fixed
//! executor pool (`workers`) runs the actual database requests. Each
//! connection is a state machine — read-accumulate → decode → execute
//! → write-drain — so hundreds of idle sessions cost zero wakeups and
//! a busy one costs exactly the syscalls its bytes require.
//!
//! **Pipelining.** A client may send any number of request frames
//! before reading replies. The server decodes them all, admits up to
//! `max_pipeline` per connection, and answers strictly in FIFO order:
//! at most one request per connection executes at a time (preserving
//! the session's sequential transaction semantics), queued requests
//! wait their turn, and synthesized replies (decode errors, shed
//! requests) occupy their arrival position in the reply stream.
//!
//! **Admission control.** Load sheds *before* latency collapses, and
//! it sheds the newest work first: a request that would push the
//! global admitted-but-unanswered count past `exec_queue_depth`, or
//! its connection's pipeline past `max_pipeline`, is answered
//! [`DbError::ServerBusy`] in place — never queued unboundedly, and
//! never at the expense of a request already admitted. Whole
//! connections shed at the door the same way when `max_connections`
//! or a loop's `accept_queue` is exceeded.
//!
//! Behavior contracts carried over from the threaded server: one
//! explicit transaction per session, rolled back when the session
//! dies; graceful shutdown drains every admitted request and flushes
//! its reply; idle sessions are evicted on `idle_timeout` and
//! mid-frame stalls on `read_timeout`; a panicking handler costs one
//! connection (its transaction rolls back, the client sees an
//! `Internal` error), never a worker or the pool.

use crate::frame::{self, FrameDecoder};
use crate::poller::{Interest, Poller, Waker};
use crate::wire::{Request, Response};
use orion_core::{Database, DbError, DbResult, NetMetrics, Tx};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token the event loop registers its waker under; connection tokens
/// start above it.
const WAKE_TOKEN: u64 = 0;

/// Per-connection write-buffer backlog above which the loop stops
/// reading that connection (backpressure: a peer that will not drain
/// its replies may not keep submitting work).
const WRITE_HIGHWATER: usize = 256 * 1024;

/// Bytes one connection may read per readiness event before yielding
/// to its neighbors (the level-triggered poller re-reports it
/// immediately if more input is pending).
const READ_QUANTUM: usize = 64 * 1024;

/// Tuning knobs for [`Server`]. The defaults suit tests and small
/// deployments; production sizes `workers` to the database's useful
/// concurrency and `exec_queue_depth` to the queueing delay it is
/// willing to trade against shedding.
#[derive(Clone)]
pub struct ServerConfig {
    /// Executor threads: how many requests run concurrently. This no
    /// longer caps concurrent *sessions* — connections are multiplexed
    /// on the event loops and only occupy a worker while a request of
    /// theirs is executing.
    pub workers: usize,
    /// Event-loop threads multiplexing the connections. `0` sizes
    /// automatically (min(available cores, 4)).
    pub io_threads: usize,
    /// Maximum concurrently open sessions; connections beyond it are
    /// answered [`DbError::ServerBusy`] at the door and closed.
    pub max_connections: usize,
    /// Accepted connections waiting to be picked up by an event loop
    /// before the acceptor sheds with [`DbError::ServerBusy`].
    pub accept_queue: usize,
    /// Per-connection pipeline depth: decoded requests a connection may
    /// have admitted-but-unanswered before further ones are shed with
    /// [`DbError::ServerBusy`] (tail-drop: the newest request sheds,
    /// admitted ones always finish).
    pub max_pipeline: usize,
    /// Global cap on admitted requests awaiting or undergoing
    /// execution, across all connections (the executor queue bound).
    /// Requests beyond it shed with [`DbError::ServerBusy`].
    pub exec_queue_depth: usize,
    /// Mid-frame stall tolerance: a peer that starts a frame and then
    /// goes silent this long is disconnected.
    pub read_timeout: Duration,
    /// A connection whose reply backlog makes no progress for this
    /// long is disconnected.
    pub write_timeout: Duration,
    /// A session with no new request for this long is evicted (its open
    /// transaction, if any, is rolled back).
    pub idle_timeout: Duration,
    /// Maximum frame payload accepted from a client.
    pub max_frame: usize,
    /// Unused since the polling frame reader was replaced by
    /// readiness-based I/O (reads now wake exactly when bytes arrive).
    /// Still validated as nonzero so configurations written against
    /// the old server keep their meaning checked.
    #[deprecated(note = "the evented server does not poll; this knob has no effect")]
    pub frame_poll_interval: Duration,
    /// Unused since the accept-queue busy-wait was replaced by condvar
    /// and waker wakeups. Still validated as nonzero (see
    /// `frame_poll_interval`).
    #[deprecated(note = "the evented server does not poll; this knob has no effect")]
    pub queue_poll_interval: Duration,
    /// Observation hook invoked with every decoded request before
    /// dispatch. A fault-injection seam for tests (a panicking hook
    /// exercises the executor's panic isolation); `None` in production.
    pub request_hook: Option<RequestHook>,
}

/// Shape of [`ServerConfig::request_hook`].
pub type RequestHook = Arc<dyn Fn(&Request) + Send + Sync>;

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("workers", &self.workers)
            .field("io_threads", &self.io_threads)
            .field("max_connections", &self.max_connections)
            .field("accept_queue", &self.accept_queue)
            .field("max_pipeline", &self.max_pipeline)
            .field("exec_queue_depth", &self.exec_queue_depth)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("idle_timeout", &self.idle_timeout)
            .field("max_frame", &self.max_frame)
            .field("request_hook", &self.request_hook.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

impl Default for ServerConfig {
    #[allow(deprecated)] // the aliases must still be constructible
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            io_threads: 0,
            max_connections: 1024,
            accept_queue: 64,
            max_pipeline: 64,
            exec_queue_depth: 128,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            max_frame: frame::MAX_FRAME,
            frame_poll_interval: Duration::from_millis(50),
            queue_poll_interval: Duration::from_millis(100),
            request_hook: None,
        }
    }
}

impl ServerConfig {
    fn validate(&self) -> DbResult<()> {
        if self.workers == 0 {
            return Err(DbError::Config("server workers must be >= 1".into()));
        }
        if self.max_connections == 0 {
            return Err(DbError::Config("server max_connections must be >= 1".into()));
        }
        if self.accept_queue == 0 {
            return Err(DbError::Config("server accept_queue must be >= 1".into()));
        }
        if self.max_pipeline == 0 {
            return Err(DbError::Config("server max_pipeline must be >= 1".into()));
        }
        if self.exec_queue_depth == 0 {
            return Err(DbError::Config("server exec_queue_depth must be >= 1".into()));
        }
        if self.read_timeout.is_zero()
            || self.write_timeout.is_zero()
            || self.idle_timeout.is_zero()
        {
            return Err(DbError::Config("server timeouts must be nonzero".into()));
        }
        if self.max_frame == 0 {
            return Err(DbError::Config("server max_frame must be nonzero".into()));
        }
        #[allow(deprecated)] // deprecated aliases stay validated
        if self.frame_poll_interval.is_zero() || self.queue_poll_interval.is_zero() {
            return Err(DbError::Config("server poll intervals must be nonzero".into()));
        }
        Ok(())
    }

    fn resolved_io_threads(&self) -> usize {
        if self.io_threads > 0 {
            return self.io_threads;
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4)
    }
}

/// One admitted request from one connection, handed to the executor
/// pool. At most one is outstanding per connection at a time — that is
/// what keeps a session's requests (and its transaction) sequential.
struct ExecTask {
    loop_idx: usize,
    token: u64,
    conn: Arc<ConnShared>,
    request: Request,
}

/// The slice of connection state the executors touch: the session
/// (locked for the duration of a dispatch, so session semantics stay
/// sequential) and the completed-reply slot the event loop harvests.
struct ConnShared {
    session: Mutex<SessionState>,
    reply: Mutex<Option<Response>>,
    /// Set when a handler panicked: the loop flushes the `Internal`
    /// error reply and then closes the connection.
    panicked: AtomicBool,
    /// Set at teardown when the connection died with a request still on
    /// the executors. The executor observes it under the session lock
    /// and settles the session itself (skipping the request if it has
    /// not started — its reply is undeliverable and the disconnect
    /// contract says the transaction rolls back); the event loop's
    /// done-harvest settles it from the other side if the executor had
    /// already finished before the flag was raised.
    defunct: AtomicBool,
}

/// Per-session protocol state: who the client is and whether an
/// explicit transaction is open.
struct SessionState {
    handshaken: bool,
    principal: Option<String>,
    tx: Option<Tx>,
}

/// The event loops' mailboxes. The acceptor and the executors write
/// here and wake the loop; the loop drains on wakeup.
struct LoopHandle {
    /// Freshly accepted connections awaiting registration.
    inbox: Mutex<Vec<TcpStream>>,
    /// Tokens whose executor reply is ready in `ConnShared::reply`.
    done: Mutex<Vec<u64>>,
    wake: crate::poller::WakeHandle,
    /// Connections currently registered on this loop (least-loaded
    /// assignment).
    conns: AtomicUsize,
}

/// State shared by the acceptor, the event loops, and the executors.
struct Shared {
    db: Arc<Database>,
    config: ServerConfig,
    metrics: Arc<NetMetrics>,
    io_threads: usize,
    loops: Vec<LoopHandle>,
    exec_queue: Mutex<VecDeque<ExecTask>>,
    exec_cv: Condvar,
    /// Admitted requests not yet finished executing. The executor
    /// frees the slot when it completes a request (not the reply
    /// harvest), so a dying event loop can never strand it; slots for
    /// requests admitted but never dispatched free at teardown.
    inflight: AtomicUsize,
    /// Stops accepting and reading; admitted work still drains.
    shutdown: AtomicBool,
    /// Executors exit once the queue is empty.
    exec_shutdown: AtomicBool,
    active: AtomicUsize,
    sessions: AtomicU64,
}

impl Shared {
    fn connection_opened(&self) {
        let now = self.active.fetch_add(1, Ordering::AcqRel) + 1;
        self.metrics.connections.set(now as u64);
        self.metrics.connections_total.inc();
        self.metrics.connections_per_worker.set(now.div_ceil(self.io_threads) as u64);
    }

    fn connection_closed(&self) {
        let now = self.active.fetch_sub(1, Ordering::AcqRel) - 1;
        self.metrics.connections.set(now as u64);
        self.metrics.connections_per_worker.set(now.div_ceil(self.io_threads) as u64);
    }

    fn enqueue(&self, task: ExecTask) {
        self.exec_queue.lock().push_back(task);
        self.exec_cv.notify_one();
    }
}

/// A running database server. Bind with [`Server::bind`], stop with
/// [`Server::shutdown`] (drains in-flight requests) — dropping without
/// shutting down does the same.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    io_handles: Vec<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) and start the
    /// acceptor, the event loops, and the executor pool.
    pub fn bind(
        db: Arc<Database>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> DbResult<Server> {
        config.validate()?;
        let listener = TcpListener::bind(addr).map_err(|e| frame::io_err("bind", &e))?;
        let addr = listener.local_addr().map_err(|e| frame::io_err("local_addr", &e))?;
        let metrics = db.net_metrics();
        let io_threads = config.resolved_io_threads();

        let mut wakers = Vec::with_capacity(io_threads);
        let mut loops = Vec::with_capacity(io_threads);
        for _ in 0..io_threads {
            let waker = Waker::new().map_err(|e| frame::io_err("waker", &e))?;
            loops.push(LoopHandle {
                inbox: Mutex::new(Vec::new()),
                done: Mutex::new(Vec::new()),
                wake: waker.handle().map_err(|e| frame::io_err("waker", &e))?,
                conns: AtomicUsize::new(0),
            });
            wakers.push(waker);
        }
        let shared = Arc::new(Shared {
            db,
            config,
            metrics,
            io_threads,
            loops,
            exec_queue: Mutex::new(VecDeque::new()),
            exec_cv: Condvar::new(),
            inflight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            exec_shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            sessions: AtomicU64::new(0),
        });

        let executors = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("orion-net-exec-{i}"))
                    .spawn(move || executor_loop(&shared))
                    .map_err(|e| DbError::Net(format!("spawn executor: {e}")))
            })
            .collect::<DbResult<Vec<_>>>()?;
        let io_handles = wakers
            .into_iter()
            .enumerate()
            .map(|(i, waker)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("orion-net-io-{i}"))
                    .spawn(move || io_loop(&shared, i, &waker))
                    .map_err(|e| DbError::Net(format!("spawn io loop: {e}")))
            })
            .collect::<DbResult<Vec<_>>>()?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("orion-net-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared))
                .map_err(|e| DbError::Net(format!("spawn acceptor: {e}")))?
        };
        Ok(Server { shared, addr, acceptor: Some(acceptor), io_handles, executors })
    }

    /// The bound address (resolves ephemeral ports for clients).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently being served (diagnostic).
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Stop gracefully: no new connections, no new reads; every
    /// admitted request finishes and its response is written, then all
    /// threads join.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the acceptor (it sits in a blocking accept()): a
        // throwaway self-connection makes accept() return, after which
        // it sees the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for lh in &self.shared.loops {
            lh.wake.wake();
        }
        for h in self.io_handles.drain(..) {
            let _ = h.join();
        }
        // Loops are done: every admitted task is in the queue (dead
        // sessions settle as their tasks finish, via the defunct
        // flag). Executors drain the queue, then exit.
        self.shared.exec_shutdown.store(true, Ordering::Release);
        self.shared.exec_cv.notify_all();
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    let mut rr = 0usize;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.active.load(Ordering::Acquire) >= shared.config.max_connections {
            shared.metrics.busy_rejections.inc();
            reject_busy(stream);
            continue;
        }
        // Least-loaded event loop, round-robin tiebreak.
        let n = shared.loops.len();
        let mut best = rr % n;
        for k in 1..n {
            let i = (rr + k) % n;
            if shared.loops[i].conns.load(Ordering::Relaxed)
                < shared.loops[best].conns.load(Ordering::Relaxed)
            {
                best = i;
            }
        }
        rr = rr.wrapping_add(1);
        let lh = &shared.loops[best];
        {
            let mut inbox = lh.inbox.lock();
            if inbox.len() >= shared.config.accept_queue {
                drop(inbox);
                shared.metrics.busy_rejections.inc();
                reject_busy(stream);
                continue;
            }
            // The connection enters the session lifecycle here; the
            // loop (or the shutdown drain) balances with
            // connection_closed.
            shared.connection_opened();
            inbox.push(stream);
        }
        lh.wake.wake();
    }
}

/// Tell an over-capacity client why it is being turned away. Best
/// effort on a nonblocking socket: this runs on the acceptor thread,
/// which must never stall behind a slow or hostile peer — a fresh
/// connection's empty send buffer takes this tiny frame in one write
/// virtually always, and a peer it cannot reach just sees the close.
fn reject_busy(mut stream: TcpStream) {
    let _ = stream.set_nonblocking(true);
    let mut buf = Vec::new();
    frame::append_frame(&mut buf, &Response::Err(DbError::ServerBusy).encode());
    let _ = stream.write(&buf);
}

// ---------------------------------------------------------------------
// Connection state machine
// ---------------------------------------------------------------------

/// FIFO queue entries behind a connection. `Execute` holds an admitted
/// request awaiting its turn on the executors; `Reply` is a response
/// synthesized at decode time (decode error, shed request) that must
/// still be delivered in arrival order.
enum Work {
    Execute(Request),
    Reply(Response),
}

struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    decoder: FrameDecoder,
    /// Encoded replies awaiting the socket; `out_pos` marks the drained
    /// prefix.
    out: Vec<u8>,
    out_pos: usize,
    queue: VecDeque<Work>,
    /// `Work::Execute` entries currently in `queue`. The pipeline-depth
    /// admission check counts these (plus the executing request), not
    /// `queue.len()`: synthesized `Work::Reply` entries (decode errors,
    /// earlier shed replies) are already answered and must not inflate
    /// the measured depth into spurious shedding.
    pending_exec: usize,
    /// One request of this connection is on (or in line for) the
    /// executors; its reply has not been harvested yet. FIFO order
    /// hinges on this: nothing behind it advances until it answers.
    executing: bool,
    /// No more reads (peer EOF, protocol error, or server shutdown);
    /// drain the queue and the write buffer, then close.
    closing: bool,
    /// Transport failure: close immediately, nothing can be delivered.
    dead: bool,
    /// Last read progress (feeds the idle and mid-frame stall clocks).
    last_activity: Instant,
    /// When the reply backlog first failed to make progress.
    write_blocked_since: Option<Instant>,
    interest: Interest,
}

impl Conn {
    fn new(stream: TcpStream, max_frame: usize) -> Conn {
        Conn {
            stream,
            shared: Arc::new(ConnShared {
                session: Mutex::new(SessionState {
                    handshaken: false,
                    principal: None,
                    tx: None,
                }),
                reply: Mutex::new(None),
                panicked: AtomicBool::new(false),
                defunct: AtomicBool::new(false),
            }),
            decoder: FrameDecoder::new(max_frame),
            out: Vec::new(),
            out_pos: 0,
            queue: VecDeque::new(),
            pending_exec: 0,
            executing: false,
            closing: false,
            dead: false,
            last_activity: Instant::now(),
            write_blocked_since: None,
            interest: Interest { readable: true, writable: false },
        }
    }

    fn out_backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Nothing left to do: safe to tear down.
    fn finished(&self) -> bool {
        self.dead
            || (self.closing && self.queue.is_empty() && !self.executing && self.out_backlog() == 0)
    }

    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.closing && !self.dead && self.out_backlog() < WRITE_HIGHWATER,
            writable: self.out_backlog() > 0,
        }
    }

    /// The soonest moment one of this connection's clocks fires, if
    /// any: write stall, mid-frame read stall, or idleness.
    fn deadline(&self, config: &ServerConfig) -> Option<Instant> {
        let mut soonest: Option<Instant> = None;
        let mut consider = |d: Instant| match soonest {
            Some(s) if s <= d => {}
            _ => soonest = Some(d),
        };
        if let Some(blocked) = self.write_blocked_since {
            consider(blocked + config.write_timeout);
        }
        if self.decoder.mid_frame() {
            consider(self.last_activity + config.read_timeout);
        } else if !self.closing
            && self.queue.is_empty()
            && !self.executing
            && self.out_backlog() == 0
        {
            consider(self.last_activity + config.idle_timeout);
        }
        soonest
    }

    /// Drain the socket into the decoder, then admit or shed every
    /// complete frame.
    fn handle_readable(&mut self, shared: &Shared, now: Instant) {
        if self.closing || self.dead {
            return;
        }
        let mut chunk = [0u8; 16 * 1024];
        let mut taken = 0usize;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer EOF (possibly a half-close): answer what was
                    // already pipelined, then close.
                    self.closing = true;
                    break;
                }
                Ok(n) => {
                    self.last_activity = now;
                    self.decoder.feed(&chunk[..n]);
                    taken += n;
                    if taken >= READ_QUANTUM {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        loop {
            match self.decoder.next_frame() {
                Ok(Some(payload)) => self.admit(&payload, shared),
                Ok(None) => break,
                Err(e) => {
                    // Unrecoverable framing (oversized length prefix):
                    // the decoder cannot resynchronize. Answer, then
                    // close.
                    shared.metrics.errors.inc();
                    self.queue.push_back(Work::Reply(Response::Err(e)));
                    self.closing = true;
                    break;
                }
            }
        }
    }

    /// Admission control: decode the frame, then either queue it for
    /// execution or shed it with `ServerBusy` — in FIFO position
    /// either way.
    fn admit(&mut self, payload: &[u8], shared: &Shared) {
        shared.metrics.requests.inc();
        let request = match Request::decode(payload) {
            Ok(r) => r,
            Err(e) => {
                shared.metrics.errors.inc();
                self.queue.push_back(Work::Reply(Response::Err(e)));
                return;
            }
        };
        let depth = self.pending_exec + usize::from(self.executing) + 1;
        shared.metrics.pipeline_depth.observe_micros(depth as u64);
        if depth > shared.config.max_pipeline
            || shared.inflight.load(Ordering::Acquire) >= shared.config.exec_queue_depth
        {
            shared.metrics.requests_shed.inc();
            shared.metrics.errors.inc();
            self.queue.push_back(Work::Reply(Response::Err(DbError::ServerBusy)));
            return;
        }
        shared.inflight.fetch_add(1, Ordering::AcqRel);
        self.pending_exec += 1;
        self.queue.push_back(Work::Execute(request));
    }

    /// Advance the FIFO: emit synthesized replies until the head is an
    /// admitted request, then hand that to the executors. Stalls while
    /// a reply is outstanding — that is what keeps replies in order.
    fn pump(&mut self, shared: &Shared, loop_idx: usize, token: u64) {
        while !self.executing && !self.dead {
            match self.queue.pop_front() {
                Some(Work::Reply(response)) => self.push_response(&response),
                Some(Work::Execute(request)) => {
                    self.pending_exec -= 1;
                    self.executing = true;
                    shared.enqueue(ExecTask {
                        loop_idx,
                        token,
                        conn: Arc::clone(&self.shared),
                        request,
                    });
                }
                None => break,
            }
        }
    }

    fn push_response(&mut self, response: &Response) {
        frame::append_frame(&mut self.out, &response.encode());
    }

    /// Drain the write buffer as far as the socket allows.
    fn flush(&mut self, now: Instant) {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.out_pos += n;
                    self.write_blocked_since = None;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.write_blocked_since.get_or_insert(now);
                    return;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.out.clear();
        self.out_pos = 0;
        self.write_blocked_since = None;
    }
}

// ---------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------

fn io_loop(shared: &Arc<Shared>, idx: usize, waker: &Waker) {
    let mut poller = Poller::new();
    poller.register(WAKE_TOKEN, waker.fd(), Interest { readable: true, writable: false });
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    // Sessions of connections torn down while a request of theirs was
    // still with the executors. The done-harvest settles (rolls back)
    // each one when its request completes; the executor settles it
    // itself via `ConnShared::defunct` if it finishes after the loop
    // is gone — `tx.take()` under the session mutex makes the paths
    // idempotent.
    let mut orphans: HashMap<u64, Arc<ConnShared>> = HashMap::new();
    let mut next_token: u64 = WAKE_TOKEN + 1;
    let mut events = Vec::new();
    // Wakeups-per-second gauge: each loop periodically publishes the
    // fleet-wide rate measured over its own window (approximate — the
    // windows overlap — but the counter underneath is exact).
    let mut rate_window = Instant::now();
    let mut rate_base = shared.metrics.readiness_wakeups.get();
    loop {
        let shutting_down = shared.shutdown.load(Ordering::Acquire);
        let now = Instant::now();
        let mut next_deadline: Option<Instant> = None;
        let mut to_close: Vec<(u64, bool)> = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            if shutting_down {
                conn.closing = true;
            }
            if conn.finished() {
                to_close.push((token, false));
                continue;
            }
            match conn.deadline(&shared.config) {
                Some(d) if d <= now => {
                    to_close.push((token, true));
                    continue;
                }
                Some(d) => match next_deadline {
                    Some(nd) if nd <= d => {}
                    _ => next_deadline = Some(d),
                },
                None => {}
            }
            let want = conn.desired_interest();
            if want != conn.interest {
                conn.interest = want;
                poller.set_interest(token, want);
            }
        }
        for (token, timed_out) in to_close {
            teardown(&mut conns, &mut orphans, &mut poller, shared, idx, token, timed_out);
        }
        if shutting_down && conns.is_empty() {
            break;
        }

        let timeout = next_deadline.map(|d| d.saturating_duration_since(now));
        if poller.wait(timeout, &mut events).is_err() {
            // poll(2) failing outright (EINVAL/ENOMEM) leaves no way to
            // serve these sockets; drop the loop's connections and exit.
            break;
        }
        shared.metrics.readiness_wakeups.inc();
        let elapsed = rate_window.elapsed();
        if elapsed >= Duration::from_secs(1) {
            let total = shared.metrics.readiness_wakeups.get();
            let rate = (total.saturating_sub(rate_base)) as f64 / elapsed.as_secs_f64();
            shared.metrics.readiness_wakeups_per_sec.set(rate as u64);
            rate_window = Instant::now();
            rate_base = total;
        }

        let now = Instant::now();
        let mut wake_fired = false;
        for &ev in &events {
            if ev.token == WAKE_TOKEN {
                wake_fired = true;
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else { continue };
            if ev.readable {
                conn.handle_readable(shared, now);
            } else if ev.hangup {
                // Error/hangup with nothing readable: the transport is
                // gone.
                conn.dead = true;
                continue;
            }
            conn.pump(shared, idx, ev.token);
            if ev.writable || conn.out_backlog() > 0 {
                conn.flush(now);
            }
        }
        if wake_fired {
            waker.drain();
        }

        // New connections handed over by the acceptor.
        let newcomers: Vec<TcpStream> = {
            let mut inbox = shared.loops[idx].inbox.lock();
            inbox.drain(..).collect()
        };
        for stream in newcomers {
            if shutting_down {
                shared.connection_closed();
                continue; // dropped: no new sessions during shutdown
            }
            let _ = stream.set_nonblocking(true);
            let _ = stream.set_nodelay(true);
            let fd = stream.as_raw_fd();
            let token = next_token;
            next_token += 1;
            let conn = Conn::new(stream, shared.config.max_frame);
            poller.register(token, fd, conn.interest);
            conns.insert(token, conn);
            shared.loops[idx].conns.fetch_add(1, Ordering::Relaxed);
        }

        // Completed executor replies.
        let completed: Vec<u64> = {
            let mut done = shared.loops[idx].done.lock();
            done.drain(..).collect()
        };
        for token in completed {
            if let Some(orphaned) = orphans.remove(&token) {
                // The connection died while this request was with the
                // executors; the request has now answered (its reply is
                // undeliverable), so settle the session — unless the
                // executor saw the defunct flag and already did.
                if let Some(tx) = orphaned.session.lock().tx.take() {
                    let _ = shared.db.rollback(tx);
                }
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else { continue };
            let reply = conn.shared.reply.lock().take();
            conn.executing = false;
            if let Some(reply) = reply {
                conn.push_response(&reply);
            }
            if conn.shared.panicked.load(Ordering::Acquire) {
                conn.closing = true;
            }
            conn.pump(shared, idx, token);
            conn.flush(now);
        }
    }
    // Shutdown (or poller failure): every remaining connection closes;
    // open transactions roll back.
    let tokens: Vec<u64> = conns.keys().copied().collect();
    for token in tokens {
        teardown(&mut conns, &mut orphans, &mut poller, shared, idx, token, false);
    }
    // Sessions torn down with a request still on the executors settle
    // there (the defunct flag); any whose completion already landed are
    // settled here from one final harvest.
    let completed: Vec<u64> = shared.loops[idx].done.lock().drain(..).collect();
    for token in completed {
        if let Some(orphaned) = orphans.remove(&token) {
            if let Some(tx) = orphaned.session.lock().tx.take() {
                let _ = shared.db.rollback(tx);
            }
        }
    }
    // Late-arriving inbox entries (accepted before the acceptor saw
    // the flag) are dropped unserved.
    let stragglers: Vec<TcpStream> = shared.loops[idx].inbox.lock().drain(..).collect();
    for _ in stragglers {
        shared.connection_closed();
    }
}

/// Close one connection: free the admission slots of requests that
/// never reached the executors, settle the session transaction, and
/// deregister the socket.
///
/// The rollback must order *after* any request of this connection
/// still with the executors — `executing` covers both a request
/// sitting in the executor queue and one mid-dispatch (a lock probe
/// cannot tell those apart: a queued request holds no lock yet, and
/// rolling back ahead of it would let a queued Begin leak its
/// transaction or a queued write inside an explicit transaction run
/// in auto-commit). In that case the defunct flag hands the rollback
/// to the executor (checked under the session lock after dispatch)
/// and the connection parks in `orphans` so the done-harvest settles
/// it if the executor had already finished before the flag was
/// raised; `tx.take()` under the session mutex makes the two paths
/// idempotent. With nothing in flight the session lock is
/// uncontended and the rollback runs inline.
fn teardown(
    conns: &mut HashMap<u64, Conn>,
    orphans: &mut HashMap<u64, Arc<ConnShared>>,
    poller: &mut Poller,
    shared: &Shared,
    idx: usize,
    token: u64,
    timed_out: bool,
) {
    let Some(mut conn) = conns.remove(&token) else { return };
    poller.deregister(token);
    if timed_out {
        shared.metrics.timeouts.inc();
    }
    for item in conn.queue.drain(..) {
        if matches!(item, Work::Execute(_)) {
            shared.inflight.fetch_sub(1, Ordering::AcqRel);
        }
    }
    if conn.executing {
        conn.shared.defunct.store(true, Ordering::Release);
        orphans.insert(token, Arc::clone(&conn.shared));
    } else if let Some(tx) = conn.shared.session.lock().tx.take() {
        let _ = shared.db.rollback(tx);
    }
    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
    shared.loops[idx].conns.fetch_sub(1, Ordering::Relaxed);
    shared.connection_closed();
}

// ---------------------------------------------------------------------
// Executor pool
// ---------------------------------------------------------------------

fn executor_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = shared.exec_queue.lock();
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                if shared.exec_shutdown.load(Ordering::Acquire) {
                    return;
                }
                shared.exec_cv.wait(&mut queue);
            }
        };
        let ExecTask { loop_idx, token, conn, request } = task;
        let started = Instant::now();
        // Panic isolation: a panicking handler costs this one
        // connection, never an executor thread. parking_lot
        // mutexes do not poison, so the session lock releases
        // cleanly on unwind.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(hook) = shared.config.request_hook.as_ref() {
                hook(&request);
            }
            let mut session = conn.session.lock();
            // A connection torn down while this request was queued
            // must honor disconnect-rollback: the reply is
            // undeliverable, so the request does not run — a write
            // must not slip into auto-commit after the transaction it
            // belonged to is gone, and a Begin must not open a
            // transaction nobody will close.
            let response = if conn.defunct.load(Ordering::Acquire) {
                Response::Err(DbError::Net("session closed before the request ran".into()))
            } else {
                dispatch(shared, &mut session, request)
            };
            // Re-checked after dispatch for teardowns that landed
            // mid-request: still under the session lock, so this
            // cannot race the done-harvest's orphan rollback.
            if conn.defunct.load(Ordering::Acquire) {
                if let Some(tx) = session.tx.take() {
                    let _ = shared.db.rollback(tx);
                }
            }
            response
        }));
        let response = match outcome {
            Ok(response) => response,
            Err(_) => {
                conn.panicked.store(true, Ordering::Release);
                if let Some(tx) = conn.session.lock().tx.take() {
                    let _ = shared.db.rollback(tx);
                }
                Response::Err(DbError::Internal("request handler panicked".into()))
            }
        };
        shared.metrics.request_latency.observe(started.elapsed());
        if matches!(response, Response::Err(_)) {
            shared.metrics.errors.inc();
        }
        *conn.reply.lock() = Some(response);
        // The admission slot frees when execution finishes, here —
        // not at reply harvest, so an event loop that dies with
        // requests still executing can never strand slots.
        shared.inflight.fetch_sub(1, Ordering::AcqRel);
        let lh = &shared.loops[loop_idx];
        lh.done.lock().push(token);
        lh.wake.wake();
    }
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

/// Run `f` inside the session transaction when one is open; otherwise
/// begin/commit around it (auto-commit), rolling back on error.
fn with_tx<T>(
    shared: &Shared,
    session: &mut SessionState,
    f: impl FnOnce(&Database, &Tx) -> DbResult<T>,
) -> DbResult<T> {
    if let Some(tx) = session.tx.as_ref() {
        return f(&shared.db, tx);
    }
    let tx = begin_session_tx(shared, session);
    match f(&shared.db, &tx) {
        Ok(v) => {
            shared.db.commit(tx)?;
            Ok(v)
        }
        Err(e) => {
            let _ = shared.db.rollback(tx);
            Err(e)
        }
    }
}

fn begin_session_tx(shared: &Shared, session: &SessionState) -> Tx {
    match session.principal.as_deref() {
        Some(p) => shared.db.begin_as(p),
        None => shared.db.begin(),
    }
}

/// One batched DML operation, inside the batch's transaction scope.
fn batch_op(db: &Database, tx: &Tx, op: &Request) -> DbResult<Response> {
    Ok(match op {
        Request::CreateObject { class, attrs } => {
            let borrowed: Vec<(&str, orion_core::Value)> =
                attrs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            Response::Created { oid: db.create_object(tx, class, borrowed)? }
        }
        Request::Get { oid, attr } => Response::Value(db.get(tx, *oid, attr)?),
        Request::Set { oid, attr, value } => {
            db.set(tx, *oid, attr, value.clone())?;
            Response::Ok
        }
        Request::Delete { oid } => {
            db.delete_object(tx, *oid)?;
            Response::Ok
        }
        _ => {
            return Err(DbError::Protocol(
                "batch operations must be DML (CreateObject/Get/Set/Delete)".into(),
            ))
        }
    })
}

fn dispatch(shared: &Shared, session: &mut SessionState, request: Request) -> Response {
    if !session.handshaken {
        return match request {
            Request::Hello { principal } => {
                session.handshaken = true;
                session.principal = principal;
                let id = shared.sessions.fetch_add(1, Ordering::AcqRel) + 1;
                Response::Hello { session: id }
            }
            _ => Response::Err(DbError::Protocol(
                "first message on a connection must be Hello".into(),
            )),
        };
    }
    match request {
        Request::Hello { .. } => {
            Response::Err(DbError::Protocol("duplicate Hello on an open session".into()))
        }
        Request::Ping => Response::Pong,
        Request::Query { text } => {
            match with_tx(shared, session, |db, tx| db.query(tx, &text)) {
                Ok(r) => Response::from_query_result(r),
                Err(e) => Response::Err(e),
            }
        }
        Request::Explain { text } => {
            match with_tx(shared, session, |db, tx| db.explain(tx, &text)) {
                Ok(report) => Response::Explain { text: report.to_string() },
                Err(e) => Response::Err(e),
            }
        }
        Request::Begin => {
            if session.tx.is_some() {
                return Response::Err(DbError::InvalidTxnState(
                    "a transaction is already open on this session".into(),
                ));
            }
            let tx = begin_session_tx(shared, session);
            let id = tx.id();
            session.tx = Some(tx);
            Response::Txn { id }
        }
        Request::Commit => match session.tx.take() {
            Some(tx) => match shared.db.commit(tx) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(e),
            },
            None => Response::Err(DbError::InvalidTxnState(
                "no open transaction to commit".into(),
            )),
        },
        Request::Rollback => match session.tx.take() {
            Some(tx) => match shared.db.rollback(tx) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(e),
            },
            None => Response::Err(DbError::InvalidTxnState(
                "no open transaction to roll back".into(),
            )),
        },
        Request::CreateObject { class, attrs } => {
            let result = with_tx(shared, session, |db, tx| {
                let borrowed: Vec<(&str, orion_core::Value)> =
                    attrs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
                db.create_object(tx, &class, borrowed)
            });
            match result {
                Ok(oid) => Response::Created { oid },
                Err(e) => Response::Err(e),
            }
        }
        Request::Get { oid, attr } => {
            match with_tx(shared, session, |db, tx| db.get(tx, oid, &attr)) {
                Ok(v) => Response::Value(v),
                Err(e) => Response::Err(e),
            }
        }
        Request::Set { oid, attr, value } => {
            match with_tx(shared, session, |db, tx| db.set(tx, oid, &attr, value.clone())) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(e),
            }
        }
        Request::Delete { oid } => {
            match with_tx(shared, session, |db, tx| db.delete_object(tx, oid)) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(e),
            }
        }
        Request::Batch { ops } => {
            // The whole batch is one transaction scope: the session
            // transaction when open (a failed op answers an error but
            // leaves that transaction to the client, like any failed
            // request), else one auto-commit around every op (a failed
            // op rolls the batch back atomically).
            let result = with_tx(shared, session, |db, tx| {
                ops.iter().map(|op| batch_op(db, tx, op)).collect::<DbResult<Vec<_>>>()
            });
            match result {
                Ok(results) => Response::Batch { results },
                Err(e) => Response::Err(e),
            }
        }
        Request::CreateClass { name, supers, attrs } => {
            let supers: Vec<&str> = supers.iter().map(String::as_str).collect();
            match shared.db.create_class(&name, &supers, attrs) {
                Ok(class_id) => Response::Class { class_id: class_id.raw() },
                Err(e) => Response::Err(e),
            }
        }
        Request::CreateIndex { name, kind, class, path } => {
            let path: Vec<&str> = path.iter().map(String::as_str).collect();
            match shared.db.create_index(&name, kind, &class, &path) {
                Ok(_) => Response::Ok,
                Err(e) => Response::Err(e),
            }
        }
        Request::Checkout { root } => {
            // Checkout locks must outlive the request, so an explicit
            // session transaction is required (auto-commit would release
            // them before the client ever edits the workspace).
            let Some(tx) = session.tx.as_ref() else {
                return Response::Err(DbError::InvalidTxnState(
                    "checkout requires an explicit transaction (Begin first)".into(),
                ));
            };
            match shared.db.checkout(tx, root) {
                Ok(ws) => {
                    let mut entries: Vec<_> = ws.into_iter().collect();
                    entries.sort_by_key(|(oid, _)| oid.to_raw());
                    Response::Workspace(entries)
                }
                Err(e) => Response::Err(e),
            }
        }
        Request::Checkin { workspace } => {
            let result = with_tx(shared, session, |db, tx| {
                let ws: HashMap<_, _> = workspace.iter().cloned().collect();
                db.checkin(tx, ws)
            });
            match result {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(e),
            }
        }
        Request::Stats => {
            Response::Stats { prometheus: shared.db.stats().render_prometheus() }
        }
        Request::Prepare { txn } => {
            // Normal path: the session transaction matches the id the
            // coordinator names. Prepare parks it in the engine; the
            // session handle is dropped so a later disconnect does NOT
            // roll it back — only a coordinator decision settles it.
            if let Some(tx) = session.tx.as_ref() {
                if tx.id() != txn {
                    return Response::Err(DbError::InvalidTxnState(format!(
                        "prepare names transaction {txn} but the session transaction is {}",
                        tx.id()
                    )));
                }
                return match shared.db.prepare(tx) {
                    Ok(()) => {
                        session.tx = None;
                        Response::Prepared { txn }
                    }
                    Err(e) => {
                        // Prepare failed; the transaction is still
                        // active — roll it back so its locks release.
                        if let Some(tx) = session.tx.take() {
                            let _ = shared.db.rollback(tx);
                        }
                        Response::Err(e)
                    }
                };
            }
            // Retransmission path: a coordinator that lost the ack
            // reconnects and re-sends. If the engine already holds the
            // id prepared, the original request won — acknowledge it.
            // Otherwise the disconnect rolled the transaction back and
            // the coordinator must abort (presumed abort).
            if shared.db.in_doubt().contains(&txn) {
                Response::Prepared { txn }
            } else {
                Response::Err(DbError::InvalidTxnState(format!(
                    "transaction {txn} is not open on this session and not prepared"
                )))
            }
        }
        Request::CommitPrepared { txn } => match shared.db.commit_prepared(txn) {
            Ok(_) => Response::Ok,
            Err(e) => Response::Err(e),
        },
        Request::AbortPrepared { txn } => match shared.db.abort_prepared(txn) {
            Ok(_) => Response::Ok,
            Err(e) => Response::Err(e),
        },
        Request::Resolve { txn } => {
            let mut txns = shared.db.in_doubt();
            if let Some(filter) = txn {
                txns.retain(|t| *t == filter);
            }
            Response::InDoubt { txns }
        }
    }
}
