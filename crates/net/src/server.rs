//! The multi-client server: a bounded worker pool over blocking
//! sockets.
//!
//! One acceptor thread pushes connections onto a bounded queue; `N`
//! worker threads pop them and run one session each, so `N` is both the
//! pool size and the concurrent-connection limit. When the queue is
//! full the acceptor answers [`DbError::ServerBusy`] and closes — load
//! sheds at the door instead of growing an unbounded backlog
//! (backpressure the client can see and retry on).
//!
//! A session is one connection: a handshake naming the authorization
//! principal, then a request/response loop. Requests run inside the
//! session's explicit transaction when one is open, else each runs in
//! its own auto-committed transaction. A connection that dies with a
//! transaction open gets it rolled back — strict 2PL locks never
//! outlive their session.
//!
//! Shutdown is graceful: workers notice the flag only *between*
//! requests (the polling read), so every in-flight request finishes and
//! its response reaches the client before the socket closes.
//!
//! Workers are panic-safe: each session runs under `catch_unwind`, and
//! the accept queue uses non-poisoning locks, so a handler that panics
//! costs one connection (its transaction rolls back, the client gets an
//! `Internal` error) — never a worker thread or the whole pool.

use crate::frame::{self, read_frame_polling, ReadOutcome};
use crate::wire::{Request, Response};
use orion_core::{Database, DbError, DbResult, NetMetrics, Tx};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server`]. The defaults suit tests and small
/// deployments; production raises `workers` to the expected concurrent
/// client count.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads = maximum concurrent sessions.
    pub workers: usize,
    /// Accepted-but-unclaimed connections to hold before shedding load
    /// with [`DbError::ServerBusy`].
    pub accept_queue: usize,
    /// Mid-frame stall tolerance: a peer that starts a frame and then
    /// goes silent this long is disconnected.
    pub read_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// A session with no new request for this long is evicted (its open
    /// transaction, if any, is rolled back).
    pub idle_timeout: Duration,
    /// Maximum frame payload accepted from a client.
    pub max_frame: usize,
    /// How often a blocked frame read wakes to check the shutdown flag
    /// and the idle/stall deadlines. Smaller values make shutdown and
    /// eviction more responsive at the cost of idle wakeups; it must
    /// not exceed `read_timeout` or `idle_timeout`, or those deadlines
    /// would be quantized past their configured values.
    pub frame_poll_interval: Duration,
    /// How long an idle worker sleeps on the accept-queue condvar
    /// before re-checking the shutdown flag (bounds shutdown latency
    /// for workers with no connection to serve).
    pub queue_poll_interval: Duration,
    /// Observation hook invoked with every decoded request before
    /// dispatch. A fault-injection seam for tests (a panicking hook
    /// exercises the worker's panic isolation); `None` in production.
    pub request_hook: Option<RequestHook>,
}

/// Shape of [`ServerConfig::request_hook`].
pub type RequestHook = Arc<dyn Fn(&Request) + Send + Sync>;

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("workers", &self.workers)
            .field("accept_queue", &self.accept_queue)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("idle_timeout", &self.idle_timeout)
            .field("max_frame", &self.max_frame)
            .field("frame_poll_interval", &self.frame_poll_interval)
            .field("queue_poll_interval", &self.queue_poll_interval)
            .field("request_hook", &self.request_hook.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            accept_queue: 16,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            max_frame: frame::MAX_FRAME,
            frame_poll_interval: frame::DEFAULT_POLL_INTERVAL,
            queue_poll_interval: Duration::from_millis(100),
            request_hook: None,
        }
    }
}

impl ServerConfig {
    fn validate(&self) -> DbResult<()> {
        if self.workers == 0 {
            return Err(DbError::Config("server workers must be >= 1".into()));
        }
        if self.accept_queue == 0 {
            return Err(DbError::Config("server accept_queue must be >= 1".into()));
        }
        if self.read_timeout.is_zero()
            || self.write_timeout.is_zero()
            || self.idle_timeout.is_zero()
        {
            return Err(DbError::Config("server timeouts must be nonzero".into()));
        }
        if self.max_frame == 0 {
            return Err(DbError::Config("server max_frame must be nonzero".into()));
        }
        if self.frame_poll_interval.is_zero() || self.queue_poll_interval.is_zero() {
            return Err(DbError::Config("server poll intervals must be nonzero".into()));
        }
        if self.frame_poll_interval > self.read_timeout
            || self.frame_poll_interval > self.idle_timeout
        {
            return Err(DbError::Config(
                "frame_poll_interval must not exceed read_timeout or idle_timeout".into(),
            ));
        }
        Ok(())
    }
}

/// State shared by the acceptor and every worker.
struct Shared {
    db: Arc<Database>,
    config: ServerConfig,
    metrics: Arc<NetMetrics>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    active: AtomicUsize,
    sessions: AtomicU64,
}

impl Shared {
    /// Track the live-connection count and mirror it into the gauge.
    fn connection_opened(&self) {
        let now = self.active.fetch_add(1, Ordering::AcqRel) + 1;
        self.metrics.connections.set(now as u64);
        self.metrics.connections_total.inc();
    }

    fn connection_closed(&self) {
        let now = self.active.fetch_sub(1, Ordering::AcqRel) - 1;
        self.metrics.connections.set(now as u64);
    }
}

/// A running database server. Bind with [`Server::bind`], stop with
/// [`Server::shutdown`] (drains in-flight requests) — dropping without
/// shutting down stops threads abruptly but never corrupts the
/// database (open transactions roll back).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) and start the
    /// acceptor plus worker pool.
    pub fn bind(
        db: Arc<Database>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> DbResult<Server> {
        config.validate()?;
        let listener = TcpListener::bind(addr).map_err(|e| frame::io_err("bind", &e))?;
        let addr = listener.local_addr().map_err(|e| frame::io_err("local_addr", &e))?;
        let metrics = db.net_metrics();
        let shared = Arc::new(Shared {
            db,
            config,
            metrics,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            sessions: AtomicU64::new(0),
        });
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("orion-net-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| DbError::Net(format!("spawn worker: {e}")))
            })
            .collect::<DbResult<Vec<_>>>()?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("orion-net-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared))
                .map_err(|e| DbError::Net(format!("spawn acceptor: {e}")))?
        };
        Ok(Server { shared, addr, acceptor: Some(acceptor), workers })
    }

    /// The bound address (resolves ephemeral ports for clients).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently being served (diagnostic).
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Stop gracefully: no new connections, in-flight requests finish
    /// and their responses are written, then all threads join.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the acceptor (it sits in a blocking accept()): a
        // throwaway self-connection makes accept() return, after which
        // it sees the flag.
        let _ = TcpStream::connect(self.addr);
        self.shared.queue_cv.notify_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut queue = shared.queue.lock();
        if queue.len() >= shared.config.accept_queue {
            drop(queue);
            shared.metrics.busy_rejections.inc();
            reject_busy(stream, shared);
            continue;
        }
        queue.push_back(stream);
        drop(queue);
        shared.queue_cv.notify_one();
    }
}

/// Tell an over-capacity client why it is being turned away.
fn reject_busy(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = frame::write_frame(&mut stream, &Response::Err(DbError::ServerBusy).encode());
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                shared.queue_cv.wait_for(&mut queue, shared.config.queue_poll_interval);
            }
        };
        let Some(stream) = stream else { return };
        shared.connection_opened();
        serve_connection(stream, shared);
        shared.connection_closed();
    }
}

/// Per-connection state: who the client is and whether an explicit
/// transaction is open.
struct Session {
    principal: Option<String>,
    tx: Option<Tx>,
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut session = Session { principal: None, tx: None };
    // Panic isolation: a panicking handler costs this one connection,
    // never the worker thread. The session lives outside the unwind
    // boundary so its open transaction still rolls back below.
    let outcome =
        catch_unwind(AssertUnwindSafe(|| session_loop(&mut stream, shared, &mut session)));
    if outcome.is_err() {
        shared.metrics.errors.inc();
        let reply = Response::Err(DbError::Internal("request handler panicked".into()));
        let _ = frame::write_frame(&mut stream, &reply.encode());
    }
    // The session is over; its locks must not outlive it.
    if let Some(tx) = session.tx.take() {
        let _ = shared.db.rollback(tx);
    }
}

fn session_loop(stream: &mut TcpStream, shared: &Shared, session: &mut Session) {
    let mut handshaken = false;
    while let Ok(outcome) = read_frame_polling(
        stream,
        shared.config.max_frame,
        shared.config.idle_timeout,
        shared.config.read_timeout,
        shared.config.frame_poll_interval,
        &shared.shutdown,
    ) {
        let payload = match outcome {
            ReadOutcome::Frame(p) => p,
            ReadOutcome::Eof | ReadOutcome::Shutdown => break,
            ReadOutcome::Idle | ReadOutcome::Stalled => {
                shared.metrics.timeouts.inc();
                break;
            }
        };
        shared.metrics.requests.inc();
        let started = Instant::now();
        let response = match Request::decode(&payload) {
            Ok(request) => {
                if let Some(hook) = shared.config.request_hook.as_ref() {
                    hook(&request);
                }
                dispatch(shared, session, &mut handshaken, request)
            }
            Err(e) => Response::Err(e),
        };
        shared.metrics.request_latency.observe(started.elapsed());
        if matches!(response, Response::Err(_)) {
            shared.metrics.errors.inc();
        }
        if frame::write_frame(stream, &response.encode()).is_err() {
            break;
        }
    }
}

/// Run `f` inside the session transaction when one is open; otherwise
/// begin/commit around it (auto-commit), rolling back on error.
fn with_tx<T>(
    shared: &Shared,
    session: &mut Session,
    f: impl FnOnce(&Database, &Tx) -> DbResult<T>,
) -> DbResult<T> {
    if let Some(tx) = session.tx.as_ref() {
        return f(&shared.db, tx);
    }
    let tx = begin_session_tx(shared, session);
    match f(&shared.db, &tx) {
        Ok(v) => {
            shared.db.commit(tx)?;
            Ok(v)
        }
        Err(e) => {
            let _ = shared.db.rollback(tx);
            Err(e)
        }
    }
}

fn begin_session_tx(shared: &Shared, session: &Session) -> Tx {
    match session.principal.as_deref() {
        Some(p) => shared.db.begin_as(p),
        None => shared.db.begin(),
    }
}

fn dispatch(
    shared: &Shared,
    session: &mut Session,
    handshaken: &mut bool,
    request: Request,
) -> Response {
    if !*handshaken {
        return match request {
            Request::Hello { principal } => {
                *handshaken = true;
                session.principal = principal;
                let id = shared.sessions.fetch_add(1, Ordering::AcqRel) + 1;
                Response::Hello { session: id }
            }
            _ => Response::Err(DbError::Protocol(
                "first message on a connection must be Hello".into(),
            )),
        };
    }
    match request {
        Request::Hello { .. } => {
            Response::Err(DbError::Protocol("duplicate Hello on an open session".into()))
        }
        Request::Ping => Response::Pong,
        Request::Query { text } => {
            match with_tx(shared, session, |db, tx| db.query(tx, &text)) {
                Ok(r) => Response::from_query_result(r),
                Err(e) => Response::Err(e),
            }
        }
        Request::Explain { text } => {
            match with_tx(shared, session, |db, tx| db.explain(tx, &text)) {
                Ok(report) => Response::Explain { text: report.to_string() },
                Err(e) => Response::Err(e),
            }
        }
        Request::Begin => {
            if session.tx.is_some() {
                return Response::Err(DbError::InvalidTxnState(
                    "a transaction is already open on this session".into(),
                ));
            }
            let tx = begin_session_tx(shared, session);
            let id = tx.id();
            session.tx = Some(tx);
            Response::Txn { id }
        }
        Request::Commit => match session.tx.take() {
            Some(tx) => match shared.db.commit(tx) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(e),
            },
            None => Response::Err(DbError::InvalidTxnState(
                "no open transaction to commit".into(),
            )),
        },
        Request::Rollback => match session.tx.take() {
            Some(tx) => match shared.db.rollback(tx) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(e),
            },
            None => Response::Err(DbError::InvalidTxnState(
                "no open transaction to roll back".into(),
            )),
        },
        Request::CreateObject { class, attrs } => {
            let result = with_tx(shared, session, |db, tx| {
                let borrowed: Vec<(&str, orion_core::Value)> =
                    attrs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
                db.create_object(tx, &class, borrowed)
            });
            match result {
                Ok(oid) => Response::Created { oid },
                Err(e) => Response::Err(e),
            }
        }
        Request::Get { oid, attr } => {
            match with_tx(shared, session, |db, tx| db.get(tx, oid, &attr)) {
                Ok(v) => Response::Value(v),
                Err(e) => Response::Err(e),
            }
        }
        Request::Set { oid, attr, value } => {
            match with_tx(shared, session, |db, tx| db.set(tx, oid, &attr, value.clone())) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(e),
            }
        }
        Request::Delete { oid } => {
            match with_tx(shared, session, |db, tx| db.delete_object(tx, oid)) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(e),
            }
        }
        Request::CreateClass { name, supers, attrs } => {
            let supers: Vec<&str> = supers.iter().map(String::as_str).collect();
            match shared.db.create_class(&name, &supers, attrs) {
                Ok(class_id) => Response::Class { class_id: class_id.raw() },
                Err(e) => Response::Err(e),
            }
        }
        Request::CreateIndex { name, kind, class, path } => {
            let path: Vec<&str> = path.iter().map(String::as_str).collect();
            match shared.db.create_index(&name, kind, &class, &path) {
                Ok(_) => Response::Ok,
                Err(e) => Response::Err(e),
            }
        }
        Request::Checkout { root } => {
            // Checkout locks must outlive the request, so an explicit
            // session transaction is required (auto-commit would release
            // them before the client ever edits the workspace).
            let Some(tx) = session.tx.as_ref() else {
                return Response::Err(DbError::InvalidTxnState(
                    "checkout requires an explicit transaction (Begin first)".into(),
                ));
            };
            match shared.db.checkout(tx, root) {
                Ok(ws) => {
                    let mut entries: Vec<_> = ws.into_iter().collect();
                    entries.sort_by_key(|(oid, _)| oid.to_raw());
                    Response::Workspace(entries)
                }
                Err(e) => Response::Err(e),
            }
        }
        Request::Checkin { workspace } => {
            let result = with_tx(shared, session, |db, tx| {
                let ws: HashMap<_, _> = workspace.iter().cloned().collect();
                db.checkin(tx, ws)
            });
            match result {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(e),
            }
        }
        Request::Stats => {
            Response::Stats { prometheus: shared.db.stats().render_prometheus() }
        }
        Request::Prepare { txn } => {
            // Normal path: the session transaction matches the id the
            // coordinator names. Prepare parks it in the engine; the
            // session handle is dropped so a later disconnect does NOT
            // roll it back — only a coordinator decision settles it.
            if let Some(tx) = session.tx.as_ref() {
                if tx.id() != txn {
                    return Response::Err(DbError::InvalidTxnState(format!(
                        "prepare names transaction {txn} but the session transaction is {}",
                        tx.id()
                    )));
                }
                return match shared.db.prepare(tx) {
                    Ok(()) => {
                        session.tx = None;
                        Response::Prepared { txn }
                    }
                    Err(e) => {
                        // Prepare failed; the transaction is still
                        // active — roll it back so its locks release.
                        if let Some(tx) = session.tx.take() {
                            let _ = shared.db.rollback(tx);
                        }
                        Response::Err(e)
                    }
                };
            }
            // Retransmission path: a coordinator that lost the ack
            // reconnects and re-sends. If the engine already holds the
            // id prepared, the original request won — acknowledge it.
            // Otherwise the disconnect rolled the transaction back and
            // the coordinator must abort (presumed abort).
            if shared.db.in_doubt().contains(&txn) {
                Response::Prepared { txn }
            } else {
                Response::Err(DbError::InvalidTxnState(format!(
                    "transaction {txn} is not open on this session and not prepared"
                )))
            }
        }
        Request::CommitPrepared { txn } => match shared.db.commit_prepared(txn) {
            Ok(_) => Response::Ok,
            Err(e) => Response::Err(e),
        },
        Request::AbortPrepared { txn } => match shared.db.abort_prepared(txn) {
            Ok(_) => Response::Ok,
            Err(e) => Response::Err(e),
        },
        Request::Resolve { txn } => {
            let mut txns = shared.db.in_doubt();
            if let Some(filter) = txn {
                txns.retain(|t| *t == filter);
            }
            Response::InDoubt { txns }
        }
    }
}
