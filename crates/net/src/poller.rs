//! A minimal readiness poller over `poll(2)` — no async runtime, no
//! external crates.
//!
//! The event loop in [`crate::server`] needs exactly three things from
//! the OS: "which of these sockets can make progress", "wait at most
//! this long", and "let another thread interrupt the wait". This
//! module provides them behind a [`Poller`] (a registry of file
//! descriptors and their interest sets, mapped to caller-chosen
//! tokens) and a [`Waker`] (the classic self-pipe trick over a
//! `UnixStream` pair: writing one byte makes the read end readable,
//! which pops the poller out of its wait).
//!
//! The syscall is declared directly with `extern "C"` — the standard
//! library already links libc on every Unix target, so no new
//! dependency is introduced. `poll(2)` scans O(n) descriptors per
//! call, which is fine at the hundreds-to-thousands of connections
//! this server targets; the [`Poller`] API is deliberately shaped so
//! an `epoll` backend could replace the scan without touching the
//! event loop.

#![cfg(unix)]

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

/// Mirror of `struct pollfd` (identical layout on every Unix libc).
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: std::os::raw::c_int)
        -> std::os::raw::c_int;
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// The descriptor can be read without blocking (or has hit EOF).
    pub readable: bool,
    /// The descriptor can be written without blocking.
    pub writable: bool,
    /// The peer hung up or the descriptor is in an error state; the
    /// connection should be torn down after draining what it has.
    pub hangup: bool,
}

/// Interest set for one registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor becomes readable.
    pub readable: bool,
    /// Wake when the descriptor becomes writable.
    pub writable: bool,
}

impl Interest {
    fn events(self) -> i16 {
        // POLLERR/POLLHUP are always reported by the kernel; they need
        // no registration bit.
        (if self.readable { POLLIN } else { 0 }) | (if self.writable { POLLOUT } else { 0 })
    }
}

/// A registry of descriptors with per-descriptor interest, waited on
/// with one `poll(2)` call. Registration survives across waits (the
/// pollfd array is rebuilt only on register/deregister, not per call).
pub struct Poller {
    fds: Vec<PollFd>,
    tokens: Vec<u64>,
    index: HashMap<u64, usize>,
}

impl Poller {
    /// An empty poller.
    pub fn new() -> Poller {
        Poller { fds: Vec::new(), tokens: Vec::new(), index: HashMap::new() }
    }

    /// Number of registered descriptors.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Start watching `fd` under `token`. Tokens must be unique; a
    /// duplicate registration replaces the previous interest.
    pub fn register(&mut self, token: u64, fd: RawFd, interest: Interest) {
        if let Some(&slot) = self.index.get(&token) {
            self.fds[slot] = PollFd { fd, events: interest.events(), revents: 0 };
            return;
        }
        self.index.insert(token, self.fds.len());
        self.fds.push(PollFd { fd, events: interest.events(), revents: 0 });
        self.tokens.push(token);
    }

    /// Change what `token` waits for. Unknown tokens are ignored.
    pub fn set_interest(&mut self, token: u64, interest: Interest) {
        if let Some(&slot) = self.index.get(&token) {
            self.fds[slot].events = interest.events();
        }
    }

    /// Stop watching `token` (swap-remove; order is not preserved).
    pub fn deregister(&mut self, token: u64) {
        let Some(slot) = self.index.remove(&token) else { return };
        self.fds.swap_remove(slot);
        self.tokens.swap_remove(slot);
        if slot < self.tokens.len() {
            self.index.insert(self.tokens[slot], slot);
        }
    }

    /// Wait for readiness on any registered descriptor, at most
    /// `timeout` (`None` = forever). Ready descriptors land in
    /// `events` (cleared first). A timeout is not an error: `events`
    /// is simply left empty.
    pub fn wait(&mut self, timeout: Option<Duration>, events: &mut Vec<Event>) -> io::Result<()> {
        events.clear();
        let timeout_ms: std::os::raw::c_int = match timeout {
            // Round up so a 100µs deadline does not spin at 0ms.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as std::os::raw::c_int,
            None => -1,
        };
        let rc = unsafe {
            poll(self.fds.as_mut_ptr(), self.fds.len() as std::os::raw::c_ulong, timeout_ms)
        };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(()); // spurious wakeup; caller re-checks deadlines
            }
            return Err(e);
        }
        for (slot, pfd) in self.fds.iter().enumerate() {
            if pfd.revents == 0 {
                continue;
            }
            events.push(Event {
                token: self.tokens[slot],
                readable: pfd.revents & POLLIN != 0,
                writable: pfd.revents & POLLOUT != 0,
                hangup: pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
            });
        }
        Ok(())
    }
}

impl Default for Poller {
    fn default() -> Self {
        Poller::new()
    }
}

/// Cross-thread wakeup for a [`Poller`]: register [`Waker::fd`] for
/// reads, call [`Waker::wake`] from any thread, and the poller's wait
/// returns with that token readable. [`Waker::drain`] clears the pipe
/// so a wakeup is level-triggered exactly once.
pub struct Waker {
    tx: UnixStream,
    rx: UnixStream,
}

impl Waker {
    /// A connected, nonblocking stream pair.
    pub fn new() -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// The descriptor to register (readable) with the poller.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Make the poller's wait return. Safe from any thread; a full
    /// pipe means a wakeup is already pending, which is just as good.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Consume pending wakeup bytes (call when the waker token fires).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    /// A second handle to the wake side, for other threads to own.
    pub fn handle(&self) -> io::Result<WakeHandle> {
        Ok(WakeHandle { tx: self.tx.try_clone()? })
    }
}

/// A clonable wake-only handle to a [`Waker`].
pub struct WakeHandle {
    tx: UnixStream,
}

impl WakeHandle {
    /// See [`Waker::wake`].
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn waker_pops_a_blocked_wait() {
        let waker = Waker::new().expect("waker");
        let mut poller = Poller::new();
        poller.register(0, waker.fd(), Interest { readable: true, writable: false });
        let handle = waker.handle().expect("handle");
        // If the wake lands before wait() blocks, the byte sits in the
        // pipe and wait() returns immediately — readiness, not a race.
        let t = std::thread::spawn(move || handle.wake());
        let mut events = Vec::new();
        let started = Instant::now();
        poller.wait(Some(Duration::from_secs(5)), &mut events).expect("wait");
        assert!(started.elapsed() < Duration::from_secs(4), "woke early, not by timeout");
        assert!(events.iter().any(|e| e.token == 0 && e.readable));
        waker.drain();
        t.join().unwrap();
    }

    #[test]
    fn timeout_returns_empty() {
        let waker = Waker::new().expect("waker");
        let mut poller = Poller::new();
        poller.register(0, waker.fd(), Interest { readable: true, writable: false });
        let mut events = Vec::new();
        poller.wait(Some(Duration::from_millis(20)), &mut events).expect("wait");
        assert!(events.is_empty());
    }

    #[test]
    fn socket_readability_is_reported_and_deregister_silences_it() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut poller = Poller::new();
        poller.register(7, server_side.as_raw_fd(), Interest { readable: true, writable: false });
        std::io::Write::write_all(&mut client, b"x").unwrap();
        let mut events = Vec::new();
        poller.wait(Some(Duration::from_secs(5)), &mut events).expect("wait");
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        poller.deregister(7);
        assert!(poller.is_empty());
        poller.wait(Some(Duration::from_millis(10)), &mut events).expect("wait");
        assert!(events.is_empty());
    }
}
