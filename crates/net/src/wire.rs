//! The request/response protocol: every message the client and server
//! exchange, with its binary encoding.
//!
//! Messages reuse `orion-types`' codecs end to end — attribute values
//! travel as `codec::encode_value` bytes (the same encoding the storage
//! engine writes to pages) and errors as `wire::encode_error`, so a
//! remote failure decodes to the *same* [`DbError`] variant the facade
//! raised. The protocol covers the public facade: query/explain, DML,
//! DDL (classes and indexes), checkout/checkin, and the stats scrape.
//!
//! Encoding discipline: one leading tag byte per message, fields in
//! declaration order, all integers little-endian, collections prefixed
//! with a `u32` count. Tags are append-only.

use bytes::BufMut;
use orion_core::{AttrSpec, IndexKind, QueryResult};
use orion_types::codec::{decode_value, encode_value};
use orion_types::wire::{
    get_opt_str, get_str, get_u32, get_u64, get_u8, need, put_opt_str, put_str,
};
use orion_types::{DbError, DbResult, Domain, Oid, PrimitiveType, Value};

/// One entry of a checkout workspace: an object and its attribute
/// values by name, editable offline on the client.
pub type WorkspaceEntry = (Oid, Vec<(String, Value)>);

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

const REQ_HELLO: u8 = 0;
const REQ_PING: u8 = 1;
const REQ_QUERY: u8 = 2;
const REQ_EXPLAIN: u8 = 3;
const REQ_BEGIN: u8 = 4;
const REQ_COMMIT: u8 = 5;
const REQ_ROLLBACK: u8 = 6;
const REQ_CREATE_OBJECT: u8 = 7;
const REQ_GET: u8 = 8;
const REQ_SET: u8 = 9;
const REQ_DELETE: u8 = 10;
const REQ_CREATE_CLASS: u8 = 11;
const REQ_CREATE_INDEX: u8 = 12;
const REQ_CHECKOUT: u8 = 13;
const REQ_CHECKIN: u8 = 14;
const REQ_STATS: u8 = 15;
const REQ_PREPARE: u8 = 16;
const REQ_COMMIT_PREPARED: u8 = 17;
const REQ_ABORT_PREPARED: u8 = 18;
const REQ_RESOLVE: u8 = 19;
const REQ_BATCH: u8 = 20;

/// Everything a client can ask of the server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Session handshake; must be the first message on a connection.
    /// The principal becomes the session's authorization subject.
    Hello {
        /// Authorization subject for the session (None = system).
        principal: Option<String>,
    },
    /// Liveness probe.
    Ping,
    /// Run a declarative query (inside the session transaction when one
    /// is open, else in an auto-committed transaction).
    Query {
        /// OQL-style query text.
        text: String,
    },
    /// Plan a query and return the optimizer's explanation text.
    Explain {
        /// OQL-style query text.
        text: String,
    },
    /// Open the session transaction (strict 2PL; at most one per
    /// session).
    Begin,
    /// Commit the session transaction.
    Commit,
    /// Roll back the session transaction.
    Rollback,
    /// Create an object with named attribute values.
    CreateObject {
        /// Class name.
        class: String,
        /// `(attribute name, value)` pairs.
        attrs: Vec<(String, Value)>,
    },
    /// Read one attribute by name.
    Get {
        /// Target object.
        oid: Oid,
        /// Attribute name.
        attr: String,
    },
    /// Update one attribute by name.
    Set {
        /// Target object.
        oid: Oid,
        /// Attribute name.
        attr: String,
        /// New value.
        value: Value,
    },
    /// Delete an object (and its composite parts).
    Delete {
        /// Target object.
        oid: Oid,
    },
    /// DDL: create a class.
    CreateClass {
        /// New class name.
        name: String,
        /// Superclass names.
        supers: Vec<String>,
        /// Attribute specifications.
        attrs: Vec<AttrSpec>,
    },
    /// DDL: create an index.
    CreateIndex {
        /// Index name.
        name: String,
        /// Index kind.
        kind: IndexKind,
        /// Target class name.
        class: String,
        /// Attribute path (length 1, or ≥ 2 for nested indexes).
        path: Vec<String>,
    },
    /// Check a composite out into a client-side workspace. Requires an
    /// open session transaction (the checkout locks must outlive the
    /// request).
    Checkout {
        /// Composite root.
        root: Oid,
    },
    /// Write an edited workspace back through the update path.
    Checkin {
        /// The (possibly edited) workspace entries.
        workspace: Vec<WorkspaceEntry>,
    },
    /// Scrape every counter in the Prometheus text format.
    Stats,
    /// 2PC phase one: force the session transaction's effects and park
    /// it prepared. Carries the transaction id so a coordinator can
    /// retransmit after a reconnect — the server answers `Prepared` if
    /// that id is already parked (the ack was lost), and an error if it
    /// is unknown (the disconnect rolled it back; presumed abort).
    Prepare {
        /// The transaction id the coordinator believes it is preparing.
        txn: u64,
    },
    /// 2PC phase two, commit decision. Addressed by transaction id, not
    /// the session transaction — idempotent and retransmittable.
    CommitPrepared {
        /// The prepared transaction to commit.
        txn: u64,
    },
    /// 2PC phase two, abort decision. Idempotent like `CommitPrepared`.
    AbortPrepared {
        /// The prepared transaction to abort.
        txn: u64,
    },
    /// List in-doubt (prepared) transactions, optionally probing one id
    /// — a recovering coordinator uses this to learn what needs a
    /// decision pushed.
    Resolve {
        /// `Some(id)` narrows the answer to that transaction.
        txn: Option<u64>,
    },
    /// A batch of DML operations (`CreateObject`/`Get`/`Set`/`Delete`)
    /// executed in order inside one transaction scope: the open session
    /// transaction when there is one, else a single auto-committed
    /// transaction wrapping the whole batch. The batch is atomic — the
    /// first failing operation aborts it (the auto-commit case rolls
    /// back) and the whole batch answers that error. One frame on the
    /// wire, one admission-control slot, one executor dispatch.
    Batch {
        /// The operations, in execution order. Nesting is rejected.
        ops: Vec<Request>,
    },
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

const RESP_OK: u8 = 0;
const RESP_ERR: u8 = 1;
const RESP_HELLO: u8 = 2;
const RESP_PONG: u8 = 3;
const RESP_QUERY: u8 = 4;
const RESP_EXPLAIN: u8 = 5;
const RESP_TXN: u8 = 6;
const RESP_CREATED: u8 = 7;
const RESP_VALUE: u8 = 8;
const RESP_CLASS: u8 = 9;
const RESP_WORKSPACE: u8 = 10;
const RESP_STATS: u8 = 11;
const RESP_PREPARED: u8 = 12;
const RESP_IN_DOUBT: u8 = 13;
const RESP_BATCH: u8 = 14;

/// Everything the server can answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request succeeded with nothing to return.
    Ok,
    /// The request failed; the payload is the facade's exact error.
    Err(DbError),
    /// Handshake acknowledgement.
    Hello {
        /// Server-assigned session id (diagnostic).
        session: u64,
    },
    /// Liveness answer.
    Pong,
    /// Query results (projected rows + matching OIDs).
    Query {
        /// Projected rows, aligned with the query's select list.
        rows: Vec<Vec<Value>>,
        /// The matching objects (empty for `count(*)`).
        oids: Vec<Oid>,
    },
    /// The optimizer's explanation text.
    Explain {
        /// Rendered `ExplainReport`.
        text: String,
    },
    /// Transaction opened.
    Txn {
        /// The transaction id.
        id: u64,
    },
    /// Object created.
    Created {
        /// The new object's identity.
        oid: Oid,
    },
    /// One attribute value.
    Value(Value),
    /// Class created.
    Class {
        /// The new class id (raw).
        class_id: u16,
    },
    /// A checked-out workspace.
    Workspace(Vec<WorkspaceEntry>),
    /// The Prometheus scrape body.
    Stats {
        /// Prometheus text exposition.
        prometheus: String,
    },
    /// The transaction is parked in the prepared state, awaiting the
    /// coordinator's decision.
    Prepared {
        /// The prepared transaction id.
        txn: u64,
    },
    /// The in-doubt (prepared) transactions this participant holds.
    InDoubt {
        /// Prepared transaction ids, ascending.
        txns: Vec<u64>,
    },
    /// Per-operation answers for a [`Request::Batch`], in batch order.
    /// Only produced when every operation succeeded (a failure answers
    /// plain `Err` for the whole batch instead).
    Batch {
        /// One response per batched operation.
        results: Vec<Response>,
    },
}

// ---------------------------------------------------------------------
// Shared field codecs
// ---------------------------------------------------------------------

fn put_string_vec(out: &mut Vec<u8>, items: &[String]) {
    out.put_u32_le(items.len() as u32);
    for s in items {
        put_str(out, s);
    }
}

fn get_string_vec(buf: &mut &[u8]) -> DbResult<Vec<String>> {
    let n = get_u32(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(get_str(buf)?);
    }
    Ok(out)
}

fn put_named_values(out: &mut Vec<u8>, attrs: &[(String, Value)]) {
    out.put_u32_le(attrs.len() as u32);
    for (name, value) in attrs {
        put_str(out, name);
        encode_value(value, out);
    }
}

fn get_named_values(buf: &mut &[u8]) -> DbResult<Vec<(String, Value)>> {
    let n = get_u32(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = get_str(buf)?;
        let value = decode_value(buf)?;
        out.push((name, value));
    }
    Ok(out)
}

fn put_workspace(out: &mut Vec<u8>, ws: &[WorkspaceEntry]) {
    out.put_u32_le(ws.len() as u32);
    for (oid, attrs) in ws {
        out.put_u64_le(oid.to_raw());
        put_named_values(out, attrs);
    }
}

fn get_workspace(buf: &mut &[u8]) -> DbResult<Vec<WorkspaceEntry>> {
    let n = get_u32(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let oid = Oid::from_raw(get_u64(buf)?);
        out.push((oid, get_named_values(buf)?));
    }
    Ok(out)
}

const DOM_PRIMITIVE: u8 = 0;
const DOM_CLASS: u8 = 1;
const DOM_SET_OF: u8 = 2;
const DOM_LIST_OF: u8 = 3;
const DOM_ANY: u8 = 4;

fn put_domain(out: &mut Vec<u8>, d: &Domain) {
    match d {
        Domain::Primitive(p) => {
            out.put_u8(DOM_PRIMITIVE);
            out.put_u8(match p {
                PrimitiveType::Int => 0,
                PrimitiveType::Float => 1,
                PrimitiveType::Bool => 2,
                PrimitiveType::Str => 3,
                PrimitiveType::Blob => 4,
            });
        }
        Domain::Class(id) => {
            out.put_u8(DOM_CLASS);
            out.put_u16_le(id.raw());
        }
        Domain::SetOf(inner) => {
            out.put_u8(DOM_SET_OF);
            put_domain(out, inner);
        }
        Domain::ListOf(inner) => {
            out.put_u8(DOM_LIST_OF);
            put_domain(out, inner);
        }
        Domain::Any => out.put_u8(DOM_ANY),
    }
}

fn get_domain(buf: &mut &[u8]) -> DbResult<Domain> {
    Ok(match get_u8(buf)? {
        DOM_PRIMITIVE => Domain::Primitive(match get_u8(buf)? {
            0 => PrimitiveType::Int,
            1 => PrimitiveType::Float,
            2 => PrimitiveType::Bool,
            3 => PrimitiveType::Str,
            4 => PrimitiveType::Blob,
            other => return Err(DbError::Protocol(format!("bad primitive tag {other}"))),
        }),
        DOM_CLASS => {
            need(buf, 2)?;
            let raw = u16::from_le_bytes([buf[0], buf[1]]);
            *buf = &buf[2..];
            Domain::Class(orion_types::ClassId(raw))
        }
        DOM_SET_OF => Domain::SetOf(Box::new(get_domain(buf)?)),
        DOM_LIST_OF => Domain::ListOf(Box::new(get_domain(buf)?)),
        DOM_ANY => Domain::Any,
        other => return Err(DbError::Protocol(format!("bad domain tag {other}"))),
    })
}

fn put_attr_specs(out: &mut Vec<u8>, attrs: &[AttrSpec]) {
    out.put_u32_le(attrs.len() as u32);
    for a in attrs {
        put_str(out, &a.name);
        put_domain(out, &a.domain);
        encode_value(&a.default, out);
        out.put_u8(a.composite as u8);
    }
}

fn get_attr_specs(buf: &mut &[u8]) -> DbResult<Vec<AttrSpec>> {
    let n = get_u32(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = get_str(buf)?;
        let domain = get_domain(buf)?;
        let default = decode_value(buf)?;
        let composite = get_u8(buf)? != 0;
        let mut spec = AttrSpec::new(name, domain).with_default(default);
        if composite {
            spec = spec.composite();
        }
        out.push(spec);
    }
    Ok(out)
}

fn put_index_kind(out: &mut Vec<u8>, kind: &IndexKind) {
    out.put_u8(match kind {
        IndexKind::SingleClass => 0,
        IndexKind::ClassHierarchy => 1,
        IndexKind::Nested => 2,
    });
}

fn get_index_kind(buf: &mut &[u8]) -> DbResult<IndexKind> {
    Ok(match get_u8(buf)? {
        0 => IndexKind::SingleClass,
        1 => IndexKind::ClassHierarchy,
        2 => IndexKind::Nested,
        other => return Err(DbError::Protocol(format!("bad index kind {other}"))),
    })
}

// ---------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Hello { principal } => {
                out.put_u8(REQ_HELLO);
                put_opt_str(&mut out, principal.as_deref());
            }
            Request::Ping => out.put_u8(REQ_PING),
            Request::Query { text } => {
                out.put_u8(REQ_QUERY);
                put_str(&mut out, text);
            }
            Request::Explain { text } => {
                out.put_u8(REQ_EXPLAIN);
                put_str(&mut out, text);
            }
            Request::Begin => out.put_u8(REQ_BEGIN),
            Request::Commit => out.put_u8(REQ_COMMIT),
            Request::Rollback => out.put_u8(REQ_ROLLBACK),
            Request::CreateObject { class, attrs } => {
                out.put_u8(REQ_CREATE_OBJECT);
                put_str(&mut out, class);
                put_named_values(&mut out, attrs);
            }
            Request::Get { oid, attr } => {
                out.put_u8(REQ_GET);
                out.put_u64_le(oid.to_raw());
                put_str(&mut out, attr);
            }
            Request::Set { oid, attr, value } => {
                out.put_u8(REQ_SET);
                out.put_u64_le(oid.to_raw());
                put_str(&mut out, attr);
                encode_value(value, &mut out);
            }
            Request::Delete { oid } => {
                out.put_u8(REQ_DELETE);
                out.put_u64_le(oid.to_raw());
            }
            Request::CreateClass { name, supers, attrs } => {
                out.put_u8(REQ_CREATE_CLASS);
                put_str(&mut out, name);
                put_string_vec(&mut out, supers);
                put_attr_specs(&mut out, attrs);
            }
            Request::CreateIndex { name, kind, class, path } => {
                out.put_u8(REQ_CREATE_INDEX);
                put_str(&mut out, name);
                put_index_kind(&mut out, kind);
                put_str(&mut out, class);
                put_string_vec(&mut out, path);
            }
            Request::Checkout { root } => {
                out.put_u8(REQ_CHECKOUT);
                out.put_u64_le(root.to_raw());
            }
            Request::Checkin { workspace } => {
                out.put_u8(REQ_CHECKIN);
                put_workspace(&mut out, workspace);
            }
            Request::Stats => out.put_u8(REQ_STATS),
            Request::Prepare { txn } => {
                out.put_u8(REQ_PREPARE);
                out.put_u64_le(*txn);
            }
            Request::CommitPrepared { txn } => {
                out.put_u8(REQ_COMMIT_PREPARED);
                out.put_u64_le(*txn);
            }
            Request::AbortPrepared { txn } => {
                out.put_u8(REQ_ABORT_PREPARED);
                out.put_u64_le(*txn);
            }
            Request::Resolve { txn } => {
                out.put_u8(REQ_RESOLVE);
                match txn {
                    Some(id) => {
                        out.put_u8(1);
                        out.put_u64_le(*id);
                    }
                    None => out.put_u8(0),
                }
            }
            Request::Batch { ops } => {
                out.put_u8(REQ_BATCH);
                out.put_u32_le(ops.len() as u32);
                for op in ops {
                    // Length-prefix each operation so the decoder can
                    // hold every element to the same trailing-byte
                    // discipline as a top-level frame.
                    let bytes = op.encode();
                    out.put_u32_le(bytes.len() as u32);
                    out.extend_from_slice(&bytes);
                }
            }
        }
        out
    }

    /// Decode a frame payload.
    pub fn decode(mut buf: &[u8]) -> DbResult<Request> {
        let buf = &mut buf;
        let req = match get_u8(buf)? {
            REQ_HELLO => Request::Hello { principal: get_opt_str(buf)? },
            REQ_PING => Request::Ping,
            REQ_QUERY => Request::Query { text: get_str(buf)? },
            REQ_EXPLAIN => Request::Explain { text: get_str(buf)? },
            REQ_BEGIN => Request::Begin,
            REQ_COMMIT => Request::Commit,
            REQ_ROLLBACK => Request::Rollback,
            REQ_CREATE_OBJECT => {
                Request::CreateObject { class: get_str(buf)?, attrs: get_named_values(buf)? }
            }
            REQ_GET => {
                Request::Get { oid: Oid::from_raw(get_u64(buf)?), attr: get_str(buf)? }
            }
            REQ_SET => Request::Set {
                oid: Oid::from_raw(get_u64(buf)?),
                attr: get_str(buf)?,
                value: decode_value(buf)?,
            },
            REQ_DELETE => Request::Delete { oid: Oid::from_raw(get_u64(buf)?) },
            REQ_CREATE_CLASS => Request::CreateClass {
                name: get_str(buf)?,
                supers: get_string_vec(buf)?,
                attrs: get_attr_specs(buf)?,
            },
            REQ_CREATE_INDEX => Request::CreateIndex {
                name: get_str(buf)?,
                kind: get_index_kind(buf)?,
                class: get_str(buf)?,
                path: get_string_vec(buf)?,
            },
            REQ_CHECKOUT => Request::Checkout { root: Oid::from_raw(get_u64(buf)?) },
            REQ_CHECKIN => Request::Checkin { workspace: get_workspace(buf)? },
            REQ_STATS => Request::Stats,
            REQ_PREPARE => Request::Prepare { txn: get_u64(buf)? },
            REQ_COMMIT_PREPARED => Request::CommitPrepared { txn: get_u64(buf)? },
            REQ_ABORT_PREPARED => Request::AbortPrepared { txn: get_u64(buf)? },
            REQ_RESOLVE => Request::Resolve {
                txn: match get_u8(buf)? {
                    0 => None,
                    1 => Some(get_u64(buf)?),
                    other => {
                        return Err(DbError::Protocol(format!("bad resolve option tag {other}")))
                    }
                },
            },
            REQ_BATCH => {
                let n = get_u32(buf)? as usize;
                let mut ops = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let len = get_u32(buf)? as usize;
                    need(buf, len)?;
                    let op = Request::decode(&buf[..len])?;
                    *buf = &buf[len..];
                    if matches!(op, Request::Batch { .. }) {
                        return Err(DbError::Protocol("nested batch is not allowed".into()));
                    }
                    ops.push(op);
                }
                Request::Batch { ops }
            }
            other => return Err(DbError::Protocol(format!("unknown request tag {other}"))),
        };
        if !buf.is_empty() {
            return Err(DbError::Protocol(format!(
                "{} trailing byte(s) after request",
                buf.len()
            )));
        }
        Ok(req)
    }
}

// ---------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------

impl Response {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Ok => out.put_u8(RESP_OK),
            Response::Err(e) => {
                out.put_u8(RESP_ERR);
                orion_types::wire::encode_error(e, &mut out);
            }
            Response::Hello { session } => {
                out.put_u8(RESP_HELLO);
                out.put_u64_le(*session);
            }
            Response::Pong => out.put_u8(RESP_PONG),
            Response::Query { rows, oids } => {
                out.put_u8(RESP_QUERY);
                out.put_u32_le(rows.len() as u32);
                for row in rows {
                    out.put_u32_le(row.len() as u32);
                    for v in row {
                        encode_value(v, &mut out);
                    }
                }
                out.put_u32_le(oids.len() as u32);
                for oid in oids {
                    out.put_u64_le(oid.to_raw());
                }
            }
            Response::Explain { text } => {
                out.put_u8(RESP_EXPLAIN);
                put_str(&mut out, text);
            }
            Response::Txn { id } => {
                out.put_u8(RESP_TXN);
                out.put_u64_le(*id);
            }
            Response::Created { oid } => {
                out.put_u8(RESP_CREATED);
                out.put_u64_le(oid.to_raw());
            }
            Response::Value(v) => {
                out.put_u8(RESP_VALUE);
                encode_value(v, &mut out);
            }
            Response::Class { class_id } => {
                out.put_u8(RESP_CLASS);
                out.put_u16_le(*class_id);
            }
            Response::Workspace(ws) => {
                out.put_u8(RESP_WORKSPACE);
                put_workspace(&mut out, ws);
            }
            Response::Stats { prometheus } => {
                out.put_u8(RESP_STATS);
                put_str(&mut out, prometheus);
            }
            Response::Prepared { txn } => {
                out.put_u8(RESP_PREPARED);
                out.put_u64_le(*txn);
            }
            Response::InDoubt { txns } => {
                out.put_u8(RESP_IN_DOUBT);
                out.put_u32_le(txns.len() as u32);
                for txn in txns {
                    out.put_u64_le(*txn);
                }
            }
            Response::Batch { results } => {
                out.put_u8(RESP_BATCH);
                out.put_u32_le(results.len() as u32);
                for r in results {
                    let bytes = r.encode();
                    out.put_u32_le(bytes.len() as u32);
                    out.extend_from_slice(&bytes);
                }
            }
        }
        out
    }

    /// Decode a frame payload.
    pub fn decode(mut buf: &[u8]) -> DbResult<Response> {
        let buf = &mut buf;
        let resp = match get_u8(buf)? {
            RESP_OK => Response::Ok,
            RESP_ERR => Response::Err(orion_types::wire::decode_error(buf)?),
            RESP_HELLO => Response::Hello { session: get_u64(buf)? },
            RESP_PONG => Response::Pong,
            RESP_QUERY => {
                let n_rows = get_u32(buf)? as usize;
                let mut rows = Vec::with_capacity(n_rows.min(1024));
                for _ in 0..n_rows {
                    let n_cols = get_u32(buf)? as usize;
                    let mut row = Vec::with_capacity(n_cols.min(64));
                    for _ in 0..n_cols {
                        row.push(decode_value(buf)?);
                    }
                    rows.push(row);
                }
                let n_oids = get_u32(buf)? as usize;
                let mut oids = Vec::with_capacity(n_oids.min(1024));
                for _ in 0..n_oids {
                    oids.push(Oid::from_raw(get_u64(buf)?));
                }
                Response::Query { rows, oids }
            }
            RESP_EXPLAIN => Response::Explain { text: get_str(buf)? },
            RESP_TXN => Response::Txn { id: get_u64(buf)? },
            RESP_CREATED => Response::Created { oid: Oid::from_raw(get_u64(buf)?) },
            RESP_VALUE => Response::Value(decode_value(buf)?),
            RESP_CLASS => {
                need(buf, 2)?;
                let raw = u16::from_le_bytes([buf[0], buf[1]]);
                *buf = &buf[2..];
                Response::Class { class_id: raw }
            }
            RESP_WORKSPACE => Response::Workspace(get_workspace(buf)?),
            RESP_STATS => Response::Stats { prometheus: get_str(buf)? },
            RESP_PREPARED => Response::Prepared { txn: get_u64(buf)? },
            RESP_IN_DOUBT => {
                let n = get_u32(buf)? as usize;
                let mut txns = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    txns.push(get_u64(buf)?);
                }
                Response::InDoubt { txns }
            }
            RESP_BATCH => {
                let n = get_u32(buf)? as usize;
                let mut results = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let len = get_u32(buf)? as usize;
                    need(buf, len)?;
                    let r = Response::decode(&buf[..len])?;
                    *buf = &buf[len..];
                    if matches!(r, Response::Batch { .. }) {
                        return Err(DbError::Protocol("nested batch is not allowed".into()));
                    }
                    results.push(r);
                }
                Response::Batch { results }
            }
            other => return Err(DbError::Protocol(format!("unknown response tag {other}"))),
        };
        if !buf.is_empty() {
            return Err(DbError::Protocol(format!(
                "{} trailing byte(s) after response",
                buf.len()
            )));
        }
        Ok(resp)
    }

    /// Build the query response from a facade result.
    pub fn from_query_result(r: QueryResult) -> Response {
        Response::Query { rows: r.rows, oids: r.oids }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orion_types::ClassId;

    fn rt_req(r: Request) {
        assert_eq!(Request::decode(&r.encode()).expect("decode"), r);
    }

    fn rt_resp(r: Response) {
        assert_eq!(Response::decode(&r.encode()).expect("decode"), r);
    }

    #[test]
    fn requests_roundtrip() {
        rt_req(Request::Hello { principal: None });
        rt_req(Request::Hello { principal: Some("kim".into()) });
        rt_req(Request::Ping);
        rt_req(Request::Query { text: "select v from Vehicle* v".into() });
        rt_req(Request::Explain { text: "select v from Vehicle v".into() });
        rt_req(Request::Begin);
        rt_req(Request::Commit);
        rt_req(Request::Rollback);
        rt_req(Request::CreateObject {
            class: "Vehicle".into(),
            attrs: vec![
                ("weight".into(), Value::Int(7600)),
                ("manufacturer".into(), Value::Ref(Oid::new(ClassId(1), 3))),
            ],
        });
        rt_req(Request::Get { oid: Oid::new(ClassId(2), 9), attr: "weight".into() });
        rt_req(Request::Set {
            oid: Oid::new(ClassId(2), 9),
            attr: "weight".into(),
            value: Value::Int(8000),
        });
        rt_req(Request::Delete { oid: Oid::new(ClassId(2), 9) });
        rt_req(Request::CreateClass {
            name: "Truck".into(),
            supers: vec!["Vehicle".into()],
            attrs: vec![
                AttrSpec::new("payload", Domain::Primitive(PrimitiveType::Int))
                    .with_default(Value::Int(0)),
                AttrSpec::new("parts", Domain::set_of_class(ClassId(4))).composite(),
                AttrSpec::new("tags", Domain::ListOf(Box::new(Domain::Any))),
            ],
        });
        rt_req(Request::CreateIndex {
            name: "w".into(),
            kind: IndexKind::ClassHierarchy,
            class: "Vehicle".into(),
            path: vec!["weight".into()],
        });
        rt_req(Request::Checkout { root: Oid::new(ClassId(7), 1) });
        rt_req(Request::Checkin {
            workspace: vec![(
                Oid::new(ClassId(7), 1),
                vec![("title".into(), Value::str("alu64"))],
            )],
        });
        rt_req(Request::Stats);
        rt_req(Request::Prepare { txn: 42 });
        rt_req(Request::CommitPrepared { txn: 42 });
        rt_req(Request::AbortPrepared { txn: 42 });
        rt_req(Request::Resolve { txn: None });
        rt_req(Request::Resolve { txn: Some(42) });
        rt_req(Request::Batch { ops: vec![] });
        rt_req(Request::Batch {
            ops: vec![
                Request::CreateObject {
                    class: "Vehicle".into(),
                    attrs: vec![("weight".into(), Value::Int(7600))],
                },
                Request::Set {
                    oid: Oid::new(ClassId(2), 9),
                    attr: "weight".into(),
                    value: Value::Int(8000),
                },
                Request::Get { oid: Oid::new(ClassId(2), 9), attr: "weight".into() },
                Request::Delete { oid: Oid::new(ClassId(2), 10) },
            ],
        });
    }

    #[test]
    fn nested_batches_are_rejected() {
        let nested = Request::Batch { ops: vec![Request::Batch { ops: vec![Request::Ping] }] };
        assert!(matches!(Request::decode(&nested.encode()), Err(DbError::Protocol(_))));
        let nested =
            Response::Batch { results: vec![Response::Batch { results: vec![Response::Ok] }] };
        assert!(matches!(Response::decode(&nested.encode()), Err(DbError::Protocol(_))));
    }

    #[test]
    fn responses_roundtrip() {
        rt_resp(Response::Ok);
        rt_resp(Response::Err(DbError::LockTimeout { txn: 7, what: "object 2.9".into() }));
        rt_resp(Response::Err(DbError::ServerBusy));
        rt_resp(Response::Hello { session: 42 });
        rt_resp(Response::Pong);
        rt_resp(Response::Query {
            rows: vec![
                vec![Value::Int(1), Value::str("a")],
                vec![Value::Null, Value::Float(2.5)],
            ],
            oids: vec![Oid::new(ClassId(2), 1), Oid::new(ClassId(2), 2)],
        });
        rt_resp(Response::Explain { text: "scan(Vehicle*)".into() });
        rt_resp(Response::Txn { id: 99 });
        rt_resp(Response::Created { oid: Oid::new(ClassId(3), 5) });
        rt_resp(Response::Value(Value::set(vec![Value::Int(1), Value::Int(2)])));
        rt_resp(Response::Class { class_id: 12 });
        rt_resp(Response::Workspace(vec![(
            Oid::new(ClassId(7), 1),
            vec![("area".into(), Value::Int(120))],
        )]));
        rt_resp(Response::Stats { prometheus: "orion_net_requests_total 4\n".into() });
        rt_resp(Response::Err(DbError::Shard("no shard owns class `Vehicle`".into())));
        rt_resp(Response::Err(DbError::TxnInDoubt { txn: 88 }));
        rt_resp(Response::Prepared { txn: 42 });
        rt_resp(Response::InDoubt { txns: vec![] });
        rt_resp(Response::InDoubt { txns: vec![3, 7, 11] });
        rt_resp(Response::Batch { results: vec![] });
        rt_resp(Response::Batch {
            results: vec![
                Response::Created { oid: Oid::new(ClassId(3), 5) },
                Response::Ok,
                Response::Value(Value::Int(8000)),
                Response::Err(DbError::ServerBusy),
            ],
        });
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = Request::Ping.encode();
        bytes.push(0xFF);
        assert!(Request::decode(&bytes).is_err());
        let mut bytes = Response::Pong.encode();
        bytes.push(0xFF);
        assert!(Response::decode(&bytes).is_err());
    }

    #[test]
    fn unknown_tags_are_protocol_errors() {
        assert!(matches!(Request::decode(&[200]), Err(DbError::Protocol(_))));
        assert!(matches!(Response::decode(&[200]), Err(DbError::Protocol(_))));
    }
}
