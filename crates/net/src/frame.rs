//! Length-prefixed framing over a byte stream.
//!
//! Every message on the wire is one frame: a 4-byte little-endian
//! payload length followed by the payload (whose first byte is the
//! message tag, see [`crate::wire`]). The frame layer enforces a
//! maximum payload size on both ends — a malformed or hostile peer can
//! cost at most `max_frame` bytes of buffering, never an unbounded
//! allocation.
//!
//! Two read paths share the format: the blocking [`read_frame`] used
//! by the client (one request, one response), and the incremental
//! [`FrameDecoder`] used by the server's event loop — bytes are fed in
//! whenever a nonblocking read returns them, and complete frames are
//! popped out, however the peer happened to fragment or coalesce them
//! on the wire (pipelined clients routinely pack many frames into one
//! segment).

use orion_types::{DbError, DbResult};
use std::io::{ErrorKind, Read, Write};

/// Default maximum frame payload (16 MiB) — large enough for any
/// realistic query result, small enough to bound per-connection memory.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Write one frame (length prefix + payload) and flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len)?;
    w.write_all(payload)?;
    w.flush()
}

/// Append one frame to an in-memory buffer (the server's write path:
/// frames accumulate here and drain to the socket as it accepts them).
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Read one frame, blocking until it arrives or the stream's own read
/// timeout fires (the client side sets that to its request timeout).
/// `Ok(None)` means clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_frame}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Incremental frame decoder for nonblocking reads: [`feed`] appends
/// whatever the socket produced, [`next`] pops complete frames until
/// it returns `None` (more bytes needed). The internal buffer holds at
/// most one partial frame plus whatever complete frames have not been
/// popped yet; consumed bytes are compacted away so a long-lived
/// connection does not accrete memory.
///
/// [`feed`]: FrameDecoder::feed
/// [`next`]: FrameDecoder::next
#[derive(Debug)]
pub struct FrameDecoder {
    max_frame: usize,
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// A decoder enforcing `max_frame` on every payload length.
    pub fn new(max_frame: usize) -> FrameDecoder {
        FrameDecoder { max_frame, buf: Vec::new(), pos: 0 }
    }

    /// Append bytes read from the wire.
    pub fn feed(&mut self, data: &[u8]) {
        // Compact before growing: everything before `pos` is consumed.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Pop the next complete frame payload, or `None` if the buffer
    /// holds only a partial frame (feed more and retry). A length
    /// prefix over `max_frame` is a protocol error; the connection is
    /// beyond recovery (the decoder cannot resynchronize) and must be
    /// closed.
    pub fn next_frame(&mut self) -> DbResult<Option<Vec<u8>>> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            self.buf[self.pos..self.pos + 4].try_into().expect("4 bytes"),
        ) as usize;
        if len > self.max_frame {
            return Err(DbError::Protocol(format!(
                "frame of {len} bytes exceeds the {}-byte cap",
                self.max_frame
            )));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let frame = self.buf[self.pos + 4..self.pos + 4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(frame))
    }

    /// True when a frame has started but not finished — the input for
    /// the server's mid-frame stall clock (as opposed to the idle
    /// clock, which runs when this is false).
    pub fn mid_frame(&self) -> bool {
        self.buf.len() > self.pos
    }
}

/// Map an I/O failure into the facade's error vocabulary.
pub fn io_err(context: &str, e: &std::io::Error) -> DbError {
    DbError::Net(format!("{context}: {e}"))
}

/// `write_frame` with [`DbError`] mapping, for protocol code.
pub fn send(w: &mut impl Write, payload: &[u8]) -> DbResult<()> {
    write_frame(w, payload).map_err(|e| io_err("send", &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 64]).unwrap();
        let mut r = Cursor::new(buf);
        assert!(read_frame(&mut r, 63).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello world").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = Cursor::new(buf);
        assert!(read_frame(&mut r, MAX_FRAME).is_err());
    }

    #[test]
    fn decoder_handles_arbitrary_fragmentation() {
        let mut wire = Vec::new();
        append_frame(&mut wire, b"alpha");
        append_frame(&mut wire, b"");
        append_frame(&mut wire, b"beta-gamma");
        // Feed one byte at a time: worst-case fragmentation.
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut frames = Vec::new();
        for b in &wire {
            dec.feed(std::slice::from_ref(b));
            while let Some(f) = dec.next_frame().expect("decode") {
                frames.push(f);
            }
        }
        assert_eq!(frames, vec![b"alpha".to_vec(), Vec::new(), b"beta-gamma".to_vec()]);
        assert!(!dec.mid_frame());
    }

    #[test]
    fn decoder_pops_coalesced_frames_from_one_feed() {
        let mut wire = Vec::new();
        for i in 0..100u8 {
            append_frame(&mut wire, &[i; 3]);
        }
        let mut dec = FrameDecoder::new(MAX_FRAME);
        dec.feed(&wire);
        let mut n = 0u8;
        while let Some(f) = dec.next_frame().expect("decode") {
            assert_eq!(f, vec![n; 3]);
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn decoder_rejects_oversized_length_prefix() {
        let mut dec = FrameDecoder::new(16);
        dec.feed(&1024u32.to_le_bytes());
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn decoder_mid_frame_tracks_partial_input() {
        let mut dec = FrameDecoder::new(MAX_FRAME);
        assert!(!dec.mid_frame());
        dec.feed(&[5, 0]);
        assert!(dec.mid_frame(), "half a header is mid-frame");
        dec.feed(&[0, 0, b'a', b'b', b'c']);
        assert!(dec.next_frame().expect("decode").is_none(), "payload incomplete");
        dec.feed(b"de");
        assert_eq!(dec.next_frame().expect("decode").unwrap(), b"abcde");
        assert!(!dec.mid_frame());
    }
}
