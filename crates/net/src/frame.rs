//! Length-prefixed framing over a byte stream.
//!
//! Every message on the wire is one frame: a 4-byte little-endian
//! payload length followed by the payload (whose first byte is the
//! message tag, see [`crate::wire`]). The frame layer enforces a
//! maximum payload size on both ends — a malformed or hostile peer can
//! cost at most `max_frame` bytes of buffering, never an unbounded
//! allocation — and gives the server a *polling* read so one worker
//! thread can simultaneously honor three clocks: the per-read stall
//! timeout, the connection idle deadline, and the server's shutdown
//! flag.

use orion_types::{DbError, DbResult};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Default maximum frame payload (16 MiB) — large enough for any
/// realistic query result, small enough to bound per-connection memory.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Default poll granularity of [`read_frame_polling`]: how often a
/// blocked read wakes to check the shutdown flag and idle deadline.
/// Overridable per server via `ServerConfig::frame_poll_interval`.
pub const DEFAULT_POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Write one frame (length prefix + payload) and flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame, blocking until it arrives or the stream's own read
/// timeout fires (the client side sets that to its request timeout).
/// `Ok(None)` means clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_frame}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Why [`read_frame_polling`] returned without a frame.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed the connection at a frame boundary.
    Eof,
    /// No frame *started* within the idle deadline — evict the session.
    Idle,
    /// A frame started but stalled longer than the read timeout.
    Stalled,
    /// The server's shutdown flag was raised while waiting.
    Shutdown,
}

/// Read one frame from `stream`, waking every `poll_interval` to check
/// `shutdown` and the two deadlines: `idle_timeout` bounds the wait for
/// a frame to *start* (session eviction), `read_timeout` bounds
/// mid-frame stalls (a peer that sent half a message). I/O errors other
/// than timeout are mapped to [`ReadOutcome::Eof`]-like termination by
/// the caller via `Err`.
pub fn read_frame_polling(
    stream: &mut TcpStream,
    max_frame: usize,
    idle_timeout: Duration,
    read_timeout: Duration,
    poll_interval: Duration,
    shutdown: &AtomicBool,
) -> std::io::Result<ReadOutcome> {
    stream.set_read_timeout(Some(poll_interval))?;
    let started = Instant::now();
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    let mut payload: Option<(Vec<u8>, usize)> = None; // (buf, filled)
    let mut progress_at = Instant::now();
    loop {
        let (dst, mid_frame): (&mut [u8], bool) = match payload {
            Some((ref mut buf, filled)) => (&mut buf[filled..], true),
            None => (&mut len_buf[got..], got > 0),
        };
        if dst.is_empty() {
            // Header complete: size the payload buffer (empty payloads
            // complete immediately below).
            let len = u32::from_le_bytes(len_buf) as usize;
            if len > max_frame {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidData,
                    format!("frame of {len} bytes exceeds the {max_frame}-byte cap"),
                ));
            }
            payload = Some((vec![0u8; len], 0));
            if len == 0 {
                return Ok(ReadOutcome::Frame(Vec::new()));
            }
            continue;
        }
        match stream.read(dst) {
            Ok(0) => return Ok(ReadOutcome::Eof),
            Ok(n) => {
                progress_at = Instant::now();
                match payload {
                    Some((ref buf, ref mut filled)) => {
                        *filled += n;
                        if *filled == buf.len() {
                            let (buf, _) = payload.take().expect("payload present");
                            return Ok(ReadOutcome::Frame(buf));
                        }
                    }
                    None => got += n,
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(ReadOutcome::Shutdown);
                }
                if mid_frame {
                    if progress_at.elapsed() >= read_timeout {
                        return Ok(ReadOutcome::Stalled);
                    }
                } else if started.elapsed() >= idle_timeout {
                    return Ok(ReadOutcome::Idle);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Map an I/O failure into the facade's error vocabulary.
pub fn io_err(context: &str, e: &std::io::Error) -> DbError {
    DbError::Net(format!("{context}: {e}"))
}

/// `write_frame` with [`DbError`] mapping, for protocol code.
pub fn send(w: &mut impl Write, payload: &[u8]) -> DbResult<()> {
    write_frame(w, payload).map_err(|e| io_err("send", &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 64]).unwrap();
        let mut r = Cursor::new(buf);
        assert!(read_frame(&mut r, 63).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello world").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = Cursor::new(buf);
        assert!(read_frame(&mut r, MAX_FRAME).is_err());
    }
}
