//! The blocking client: typed methods over the wire protocol.
//!
//! One [`Client`] is one session on the server — its principal, its
//! (at most one) explicit transaction. The client is deliberately
//! synchronous: a request is written, the response is awaited under
//! `request_timeout`, and transport failures surface as
//! [`DbError::Net`]. With `reconnect` enabled, a dead connection is
//! re-dialed transparently and *idempotent read-only* requests are
//! retried under a configurable [`RetryPolicy`] (bounded attempts,
//! exponential backoff with deterministic jitter); writes and anything
//! inside an explicit transaction never retry (the first attempt may
//! have taken effect server-side).

use crate::frame::{self, read_frame, write_frame};
use crate::wire::{Request, Response, WorkspaceEntry};
use orion_core::{AttrSpec, IndexKind, QueryResult};
use orion_types::{DbError, DbResult, Oid, Value};
use std::io::BufWriter;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Retry schedule for idempotent reads over a flaky transport:
/// exponential backoff from `base_backoff`, capped at `max_backoff`,
/// shrunk by up to `jitter` deterministically (a hash of the attempt
/// and a per-client salt stands in for randomness, so two clients that
/// fail together do not retry in lockstep but a given client's
/// schedule is reproducible).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff.
    pub max_backoff: Duration,
    /// Fraction of each backoff subject to jitter, in `[0, 1]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// The pause before retry number `retry` (1-based). Pure: the same
    /// `(retry, salt)` always yields the same delay, which is the
    /// exponential backoff scaled down by up to `jitter`.
    pub fn delay(&self, retry: u32, salt: u64) -> Duration {
        let exp = self.base_backoff.saturating_mul(1u32 << retry.saturating_sub(1).min(20));
        let capped = exp.min(self.max_backoff);
        let jitter = self.jitter.clamp(0.0, 1.0);
        // splitmix64 of (salt, retry) → a uniform fraction in [0, 1).
        let mut h = salt ^ (u64::from(retry).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let frac = ((h ^ (h >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
        capped.mul_f64(1.0 - jitter * frac)
    }
}

/// Tuning knobs for [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// How long to wait for a TCP connect.
    pub connect_timeout: Duration,
    /// How long to wait for each response.
    pub request_timeout: Duration,
    /// Re-dial a dead connection and retry idempotent reads under
    /// `retry`. Disabling this also disables all retries.
    pub reconnect: bool,
    /// Backoff schedule for those retries.
    pub retry: RetryPolicy,
    /// Maximum frame payload accepted from the server.
    pub max_frame: usize,
    /// Authorization principal for the session (None = system).
    pub principal: Option<String>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(30),
            reconnect: true,
            retry: RetryPolicy::default(),
            max_frame: frame::MAX_FRAME,
            principal: None,
        }
    }
}

/// A blocking connection to an orion server.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<TcpStream>,
    /// True between a successful `begin()` and the following
    /// `commit()`/`rollback()`: retries are forbidden because the
    /// transaction lives on the (possibly dead) old connection.
    in_tx: bool,
}

impl Client {
    /// Connect with default configuration.
    pub fn connect(addr: impl ToSocketAddrs) -> DbResult<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit configuration; performs the Hello
    /// handshake before returning.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> DbResult<Client> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| frame::io_err("resolve", &e))?
            .next()
            .ok_or_else(|| DbError::Net("address resolved to nothing".into()))?;
        let mut client = Client { addr, config, conn: None, in_tx: false };
        client.dial()?;
        Ok(client)
    }

    /// The server address this client dials.
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    fn dial(&mut self) -> DbResult<()> {
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
            .map_err(|e| frame::io_err("connect", &e))?;
        stream.set_nodelay(true).map_err(|e| frame::io_err("nodelay", &e))?;
        stream
            .set_read_timeout(Some(self.config.request_timeout))
            .map_err(|e| frame::io_err("read timeout", &e))?;
        stream
            .set_write_timeout(Some(self.config.request_timeout))
            .map_err(|e| frame::io_err("write timeout", &e))?;
        let mut conn = Some(stream);
        let hello = Request::Hello { principal: self.config.principal.clone() };
        match exchange(&mut conn, &self.config, &hello)? {
            Response::Hello { .. } => {
                self.conn = conn;
                Ok(())
            }
            Response::Err(e) => Err(e),
            other => Err(unexpected("Hello", &other)),
        }
    }

    /// Send one request and decode one response, reconnecting and
    /// retrying under the configured [`RetryPolicy`] when that is safe.
    fn request(&mut self, request: &Request) -> DbResult<Response> {
        if self.conn.is_none() {
            if !self.config.reconnect {
                return Err(DbError::Net("connection closed".into()));
            }
            self.in_tx = false; // the old session (and its tx) is gone
            self.dial()?;
        }
        let mut last = match exchange(&mut self.conn, &self.config, request) {
            Err(DbError::Net(first)) if self.may_retry(request) => first,
            other => return other,
        };
        let policy = self.config.retry;
        let salt = u64::from(self.addr.port());
        for retry in 1..policy.max_attempts {
            std::thread::sleep(policy.delay(retry, salt));
            if let Err(e) = self.dial() {
                last = format!("{last}; reconnect failed: {e}");
                continue;
            }
            match exchange(&mut self.conn, &self.config, request) {
                Err(DbError::Net(next)) => last = next,
                other => return other,
            }
        }
        Err(DbError::Net(format!(
            "request failed after {} attempts: {last}",
            policy.max_attempts
        )))
    }

    /// A retry is safe for idempotent read-only requests outside an
    /// explicit transaction, and for the 2PC verbs *unconditionally*:
    /// they are idempotent by transaction id, so a retransmission after
    /// a reconnect lands on the server's replay-safe path (a re-sent
    /// `Prepare` is acknowledged if the id is already parked and
    /// rejected if the disconnect rolled it back; decisions and
    /// `Resolve` probes are addressed by id, not by session state).
    fn may_retry(&self, request: &Request) -> bool {
        self.config.reconnect
            && self.config.retry.max_attempts > 1
            && (matches!(
                request,
                Request::Prepare { .. }
                    | Request::CommitPrepared { .. }
                    | Request::AbortPrepared { .. }
                    | Request::Resolve { .. }
            ) || (!self.in_tx
                && matches!(
                    request,
                    Request::Ping
                        | Request::Query { .. }
                        | Request::Explain { .. }
                        | Request::Get { .. }
                        | Request::Stats
                )))
    }

    // -----------------------------------------------------------------
    // Typed API
    // -----------------------------------------------------------------

    /// Liveness probe.
    pub fn ping(&mut self) -> DbResult<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Run a declarative query.
    pub fn query(&mut self, text: &str) -> DbResult<QueryResult> {
        match self.request(&Request::Query { text: text.into() })? {
            Response::Query { rows, oids } => Ok(QueryResult { rows, oids }),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Query", &other)),
        }
    }

    /// Fetch the optimizer's plan explanation for a query.
    pub fn explain(&mut self, text: &str) -> DbResult<String> {
        match self.request(&Request::Explain { text: text.into() })? {
            Response::Explain { text } => Ok(text),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Explain", &other)),
        }
    }

    /// Open the session's explicit transaction; returns its id.
    pub fn begin(&mut self) -> DbResult<u64> {
        match self.request(&Request::Begin)? {
            Response::Txn { id } => {
                self.in_tx = true;
                Ok(id)
            }
            Response::Err(e) => Err(e),
            other => Err(unexpected("Txn", &other)),
        }
    }

    /// Commit the session transaction.
    pub fn commit(&mut self) -> DbResult<()> {
        let r = self.expect_ok(&Request::Commit);
        self.in_tx = false;
        r
    }

    /// Roll back the session transaction.
    pub fn rollback(&mut self) -> DbResult<()> {
        let r = self.expect_ok(&Request::Rollback);
        self.in_tx = false;
        r
    }

    /// Create an object with named attribute values.
    pub fn create_object(&mut self, class: &str, attrs: Vec<(&str, Value)>) -> DbResult<Oid> {
        let attrs = attrs.into_iter().map(|(n, v)| (n.to_string(), v)).collect();
        match self.request(&Request::CreateObject { class: class.into(), attrs })? {
            Response::Created { oid } => Ok(oid),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Created", &other)),
        }
    }

    /// Read one attribute by name.
    pub fn get(&mut self, oid: Oid, attr: &str) -> DbResult<Value> {
        match self.request(&Request::Get { oid, attr: attr.into() })? {
            Response::Value(v) => Ok(v),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Value", &other)),
        }
    }

    /// Update one attribute by name.
    pub fn set(&mut self, oid: Oid, attr: &str, value: Value) -> DbResult<()> {
        self.expect_ok(&Request::Set { oid, attr: attr.into(), value })
    }

    /// Delete an object (and its composite parts).
    pub fn delete(&mut self, oid: Oid) -> DbResult<()> {
        self.expect_ok(&Request::Delete { oid })
    }

    /// Run several DML operations in one round trip and one transaction
    /// scope ([`Request::Batch`] on the wire). Outside an explicit
    /// transaction the batch is atomic: the first failing operation
    /// rolls the whole batch back and surfaces here as the error.
    /// Inside an explicit transaction a failure leaves that transaction
    /// open, exactly like the same operations sent one by one. Never
    /// retried (the batch writes).
    pub fn batch(&mut self, ops: Vec<Request>) -> DbResult<Vec<Response>> {
        match self.request(&Request::Batch { ops })? {
            Response::Batch { results } => Ok(results),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Batch", &other)),
        }
    }

    /// Split send from receive: returns a [`Pipeline`] handle through
    /// which any number of requests can be written before their replies
    /// are read (the server answers in FIFO order). Dials first if the
    /// connection is down. While the handle lives the session is in raw
    /// pipelined mode — no retries, no reconnects; a transport error
    /// (or dropping the handle with replies still unread) poisons the
    /// connection so the next ordinary request re-dials a fresh
    /// session.
    pub fn pipeline(&mut self) -> DbResult<Pipeline<'_>> {
        if self.conn.is_none() {
            if !self.config.reconnect {
                return Err(DbError::Net("connection closed".into()));
            }
            self.in_tx = false; // the old session (and its tx) is gone
            self.dial()?;
        }
        Ok(Pipeline { client: self, outstanding: 0 })
    }

    /// DDL: create a class; returns the raw class id.
    pub fn create_class(
        &mut self,
        name: &str,
        supers: &[&str],
        attrs: Vec<AttrSpec>,
    ) -> DbResult<u16> {
        let supers = supers.iter().map(|s| s.to_string()).collect();
        match self.request(&Request::CreateClass { name: name.into(), supers, attrs })? {
            Response::Class { class_id } => Ok(class_id),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Class", &other)),
        }
    }

    /// DDL: create an index.
    pub fn create_index(
        &mut self,
        name: &str,
        kind: IndexKind,
        class: &str,
        path: &[&str],
    ) -> DbResult<()> {
        let path = path.iter().map(|s| s.to_string()).collect();
        self.expect_ok(&Request::CreateIndex { name: name.into(), kind, class: class.into(), path })
    }

    /// Check a composite out into a local workspace. Requires an open
    /// explicit transaction (see the server's checkout policy).
    pub fn checkout(&mut self, root: Oid) -> DbResult<Vec<WorkspaceEntry>> {
        match self.request(&Request::Checkout { root })? {
            Response::Workspace(ws) => Ok(ws),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Workspace", &other)),
        }
    }

    /// Write an edited workspace back.
    pub fn checkin(&mut self, workspace: Vec<WorkspaceEntry>) -> DbResult<()> {
        self.expect_ok(&Request::Checkin { workspace })
    }

    /// 2PC phase one: prepare the session transaction `txn` (the id
    /// returned by [`Client::begin`]). On success the transaction is
    /// parked server-side awaiting [`Client::commit_prepared`] or
    /// [`Client::abort_prepared`]; the session no longer owns it, so
    /// the client leaves its explicit-transaction state either way.
    pub fn prepare(&mut self, txn: u64) -> DbResult<()> {
        let r = self.request(&Request::Prepare { txn });
        self.in_tx = false;
        match r? {
            Response::Prepared { .. } => Ok(()),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Prepared", &other)),
        }
    }

    /// 2PC phase two, commit decision. Idempotent by transaction id:
    /// an unknown id means the decision already landed and is `Ok`.
    pub fn commit_prepared(&mut self, txn: u64) -> DbResult<()> {
        self.expect_ok(&Request::CommitPrepared { txn })
    }

    /// 2PC phase two, abort decision. Idempotent like
    /// [`Client::commit_prepared`].
    pub fn abort_prepared(&mut self, txn: u64) -> DbResult<()> {
        self.expect_ok(&Request::AbortPrepared { txn })
    }

    /// List the server's in-doubt (prepared) transactions, optionally
    /// probing one id.
    pub fn resolve(&mut self, txn: Option<u64>) -> DbResult<Vec<u64>> {
        match self.request(&Request::Resolve { txn })? {
            Response::InDoubt { txns } => Ok(txns),
            Response::Err(e) => Err(e),
            other => Err(unexpected("InDoubt", &other)),
        }
    }

    /// Scrape the server's metrics in the Prometheus text format.
    pub fn stats_prometheus(&mut self) -> DbResult<String> {
        match self.request(&Request::Stats)? {
            Response::Stats { prometheus } => Ok(prometheus),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Stats", &other)),
        }
    }

    fn expect_ok(&mut self, request: &Request) -> DbResult<()> {
        match self.request(request)? {
            Response::Ok => Ok(()),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Ok", &other)),
        }
    }
}

/// In-flight window of pipelined requests on one [`Client`], created
/// by [`Client::pipeline`]. [`send`] writes a request without waiting;
/// [`recv`] reads the oldest unread reply — the server guarantees FIFO
/// order, so reply `k` answers send `k`. Interleave them freely (send
/// 64, recv 64; or send/recv in lockstep with a window of one).
///
/// Every send must be matched by a recv before the handle is dropped:
/// dropping with `outstanding() > 0` marks the connection poisoned
/// (the unread replies would desynchronize the next request), and the
/// client re-dials on its next use.
///
/// [`send`]: Pipeline::send
/// [`recv`]: Pipeline::recv
pub struct Pipeline<'a> {
    client: &'a mut Client,
    outstanding: usize,
}

impl Pipeline<'_> {
    /// Write one request without waiting for its reply.
    pub fn send(&mut self, request: &Request) -> DbResult<()> {
        let stream = match self.client.conn.as_mut() {
            Some(s) => s,
            None => return Err(DbError::Net("pipeline connection lost".into())),
        };
        match write_frame(stream, &request.encode()) {
            Ok(()) => {
                self.outstanding += 1;
                Ok(())
            }
            Err(e) => {
                self.client.conn = None;
                Err(frame::io_err("pipeline send", &e))
            }
        }
    }

    /// Read the oldest unread reply (blocks under the client's request
    /// timeout).
    pub fn recv(&mut self) -> DbResult<Response> {
        if self.outstanding == 0 {
            return Err(DbError::Protocol("pipeline recv with no outstanding request".into()));
        }
        let stream = match self.client.conn.as_mut() {
            Some(s) => s,
            None => return Err(DbError::Net("pipeline connection lost".into())),
        };
        match read_frame(stream, self.client.config.max_frame) {
            Ok(Some(payload)) => {
                self.outstanding -= 1;
                Response::decode(&payload)
            }
            Ok(None) => {
                self.client.conn = None;
                Err(DbError::Net("server closed the connection mid-pipeline".into()))
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                self.client.conn = None;
                Err(DbError::Net(format!(
                    "pipelined reply timed out after {:?}",
                    self.client.config.request_timeout
                )))
            }
            Err(e) => {
                self.client.conn = None;
                Err(frame::io_err("pipeline recv", &e))
            }
        }
    }

    /// Requests sent whose replies have not been read yet.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// [`send`](Pipeline::send) a query request.
    pub fn send_query(&mut self, text: &str) -> DbResult<()> {
        self.send(&Request::Query { text: text.into() })
    }

    /// [`recv`](Pipeline::recv) a reply and decode it as a query
    /// result.
    pub fn recv_query(&mut self) -> DbResult<QueryResult> {
        match self.recv()? {
            Response::Query { rows, oids } => Ok(QueryResult { rows, oids }),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Query", &other)),
        }
    }
}

impl Drop for Pipeline<'_> {
    fn drop(&mut self) {
        if self.outstanding > 0 {
            // Unread replies are still in flight: the stream is
            // desynchronized for request/response use. Poison it; the
            // client re-dials next time.
            self.client.conn = None;
        }
    }
}

/// Write `request`, read one frame, decode the response. On transport
/// failure the connection is dropped so the caller can re-dial.
fn exchange(
    conn: &mut Option<TcpStream>,
    config: &ClientConfig,
    request: &Request,
) -> DbResult<Response> {
    let stream = conn.as_mut().ok_or_else(|| DbError::Net("not connected".into()))?;
    let result = (|| {
        let mut w = BufWriter::new(&mut *stream);
        write_frame(&mut w, &request.encode()).map_err(|e| frame::io_err("send", &e))?;
        drop(w);
        match read_frame(stream, config.max_frame) {
            Ok(Some(payload)) => Response::decode(&payload),
            Ok(None) => Err(DbError::Net("server closed the connection".into())),
            Err(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
            {
                Err(DbError::Net(format!(
                    "request timed out after {:?}",
                    config.request_timeout
                )))
            }
            Err(e) => Err(frame::io_err("recv", &e)),
        }
    })();
    if matches!(result, Err(DbError::Net(_))) {
        *conn = None;
    }
    result
}

fn unexpected(wanted: &str, got: &Response) -> DbError {
    DbError::Protocol(format!("expected {wanted} response, got {got:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_deterministic_and_jittered_within_bounds() {
        let p = RetryPolicy::default();
        for retry in 1..6u32 {
            let d1 = p.delay(retry, 42);
            let d2 = p.delay(retry, 42);
            assert_eq!(d1, d2, "same (retry, salt) gives the same delay");
            let full = p.base_backoff.saturating_mul(1 << (retry - 1)).min(p.max_backoff);
            assert!(d1 <= full, "jitter only shrinks the backoff");
            assert!(d1 >= full.mul_f64(1.0 - p.jitter), "jitter is bounded by the policy");
        }
        assert_ne!(p.delay(1, 1), p.delay(1, 2), "different salts de-synchronize clients");
    }

    #[test]
    fn delay_grows_exponentially_then_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            jitter: 0.0,
        };
        let delays: Vec<Duration> = (1..8).map(|r| p.delay(r, 0)).collect();
        assert_eq!(delays[0], Duration::from_millis(10));
        assert_eq!(delays[1], Duration::from_millis(20));
        assert_eq!(delays[2], Duration::from_millis(40));
        assert!(delays[3..].iter().all(|d| *d == Duration::from_millis(80)), "{delays:?}");
    }

    #[test]
    fn none_policy_disables_retries() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn huge_retry_counts_do_not_overflow() {
        let p = RetryPolicy { max_attempts: u32::MAX, jitter: 0.0, ..RetryPolicy::default() };
        assert_eq!(p.delay(u32::MAX, 7), p.max_backoff);
    }
}
