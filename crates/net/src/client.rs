//! The blocking client: typed methods over the wire protocol.
//!
//! One [`Client`] is one session on the server — its principal, its
//! (at most one) explicit transaction. The client is deliberately
//! synchronous: a request is written, the response is awaited under
//! `request_timeout`, and transport failures surface as
//! [`DbError::Net`]. With `reconnect` enabled, a dead connection is
//! re-dialed transparently and *idempotent read-only* requests are
//! retried once; writes and anything inside an explicit transaction
//! never retry (the first attempt may have taken effect server-side).

use crate::frame::{self, read_frame, write_frame};
use crate::wire::{Request, Response, WorkspaceEntry};
use orion_core::{AttrSpec, IndexKind, QueryResult};
use orion_types::{DbError, DbResult, Oid, Value};
use std::io::BufWriter;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Tuning knobs for [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// How long to wait for a TCP connect.
    pub connect_timeout: Duration,
    /// How long to wait for each response.
    pub request_timeout: Duration,
    /// Re-dial a dead connection and retry idempotent reads once.
    pub reconnect: bool,
    /// Maximum frame payload accepted from the server.
    pub max_frame: usize,
    /// Authorization principal for the session (None = system).
    pub principal: Option<String>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(30),
            reconnect: true,
            max_frame: frame::MAX_FRAME,
            principal: None,
        }
    }
}

/// A blocking connection to an orion server.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<TcpStream>,
    /// True between a successful `begin()` and the following
    /// `commit()`/`rollback()`: retries are forbidden because the
    /// transaction lives on the (possibly dead) old connection.
    in_tx: bool,
}

impl Client {
    /// Connect with default configuration.
    pub fn connect(addr: impl ToSocketAddrs) -> DbResult<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit configuration; performs the Hello
    /// handshake before returning.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> DbResult<Client> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| frame::io_err("resolve", &e))?
            .next()
            .ok_or_else(|| DbError::Net("address resolved to nothing".into()))?;
        let mut client = Client { addr, config, conn: None, in_tx: false };
        client.dial()?;
        Ok(client)
    }

    /// The server address this client dials.
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    fn dial(&mut self) -> DbResult<()> {
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
            .map_err(|e| frame::io_err("connect", &e))?;
        stream.set_nodelay(true).map_err(|e| frame::io_err("nodelay", &e))?;
        stream
            .set_read_timeout(Some(self.config.request_timeout))
            .map_err(|e| frame::io_err("read timeout", &e))?;
        stream
            .set_write_timeout(Some(self.config.request_timeout))
            .map_err(|e| frame::io_err("write timeout", &e))?;
        let mut conn = Some(stream);
        let hello = Request::Hello { principal: self.config.principal.clone() };
        match exchange(&mut conn, &self.config, &hello)? {
            Response::Hello { .. } => {
                self.conn = conn;
                Ok(())
            }
            Response::Err(e) => Err(e),
            other => Err(unexpected("Hello", &other)),
        }
    }

    /// Send one request and decode one response, reconnecting and
    /// retrying once when that is safe.
    fn request(&mut self, request: &Request) -> DbResult<Response> {
        if self.conn.is_none() {
            if !self.config.reconnect {
                return Err(DbError::Net("connection closed".into()));
            }
            self.in_tx = false; // the old session (and its tx) is gone
            self.dial()?;
        }
        match exchange(&mut self.conn, &self.config, request) {
            Err(DbError::Net(first)) if self.may_retry(request) => {
                self.conn = None;
                self.dial().map_err(|e| {
                    DbError::Net(format!("{first}; reconnect failed: {e}"))
                })?;
                exchange(&mut self.conn, &self.config, request)
            }
            other => other,
        }
    }

    /// A retry is safe only for idempotent read-only requests outside
    /// an explicit transaction.
    fn may_retry(&self, request: &Request) -> bool {
        self.config.reconnect
            && !self.in_tx
            && matches!(
                request,
                Request::Ping
                    | Request::Query { .. }
                    | Request::Explain { .. }
                    | Request::Get { .. }
                    | Request::Stats
            )
    }

    // -----------------------------------------------------------------
    // Typed API
    // -----------------------------------------------------------------

    /// Liveness probe.
    pub fn ping(&mut self) -> DbResult<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Run a declarative query.
    pub fn query(&mut self, text: &str) -> DbResult<QueryResult> {
        match self.request(&Request::Query { text: text.into() })? {
            Response::Query { rows, oids } => Ok(QueryResult { rows, oids }),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Query", &other)),
        }
    }

    /// Fetch the optimizer's plan explanation for a query.
    pub fn explain(&mut self, text: &str) -> DbResult<String> {
        match self.request(&Request::Explain { text: text.into() })? {
            Response::Explain { text } => Ok(text),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Explain", &other)),
        }
    }

    /// Open the session's explicit transaction; returns its id.
    pub fn begin(&mut self) -> DbResult<u64> {
        match self.request(&Request::Begin)? {
            Response::Txn { id } => {
                self.in_tx = true;
                Ok(id)
            }
            Response::Err(e) => Err(e),
            other => Err(unexpected("Txn", &other)),
        }
    }

    /// Commit the session transaction.
    pub fn commit(&mut self) -> DbResult<()> {
        let r = self.expect_ok(&Request::Commit);
        self.in_tx = false;
        r
    }

    /// Roll back the session transaction.
    pub fn rollback(&mut self) -> DbResult<()> {
        let r = self.expect_ok(&Request::Rollback);
        self.in_tx = false;
        r
    }

    /// Create an object with named attribute values.
    pub fn create_object(&mut self, class: &str, attrs: Vec<(&str, Value)>) -> DbResult<Oid> {
        let attrs = attrs.into_iter().map(|(n, v)| (n.to_string(), v)).collect();
        match self.request(&Request::CreateObject { class: class.into(), attrs })? {
            Response::Created { oid } => Ok(oid),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Created", &other)),
        }
    }

    /// Read one attribute by name.
    pub fn get(&mut self, oid: Oid, attr: &str) -> DbResult<Value> {
        match self.request(&Request::Get { oid, attr: attr.into() })? {
            Response::Value(v) => Ok(v),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Value", &other)),
        }
    }

    /// Update one attribute by name.
    pub fn set(&mut self, oid: Oid, attr: &str, value: Value) -> DbResult<()> {
        self.expect_ok(&Request::Set { oid, attr: attr.into(), value })
    }

    /// Delete an object (and its composite parts).
    pub fn delete(&mut self, oid: Oid) -> DbResult<()> {
        self.expect_ok(&Request::Delete { oid })
    }

    /// DDL: create a class; returns the raw class id.
    pub fn create_class(
        &mut self,
        name: &str,
        supers: &[&str],
        attrs: Vec<AttrSpec>,
    ) -> DbResult<u16> {
        let supers = supers.iter().map(|s| s.to_string()).collect();
        match self.request(&Request::CreateClass { name: name.into(), supers, attrs })? {
            Response::Class { class_id } => Ok(class_id),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Class", &other)),
        }
    }

    /// DDL: create an index.
    pub fn create_index(
        &mut self,
        name: &str,
        kind: IndexKind,
        class: &str,
        path: &[&str],
    ) -> DbResult<()> {
        let path = path.iter().map(|s| s.to_string()).collect();
        self.expect_ok(&Request::CreateIndex { name: name.into(), kind, class: class.into(), path })
    }

    /// Check a composite out into a local workspace. Requires an open
    /// explicit transaction (see the server's checkout policy).
    pub fn checkout(&mut self, root: Oid) -> DbResult<Vec<WorkspaceEntry>> {
        match self.request(&Request::Checkout { root })? {
            Response::Workspace(ws) => Ok(ws),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Workspace", &other)),
        }
    }

    /// Write an edited workspace back.
    pub fn checkin(&mut self, workspace: Vec<WorkspaceEntry>) -> DbResult<()> {
        self.expect_ok(&Request::Checkin { workspace })
    }

    /// Scrape the server's metrics in the Prometheus text format.
    pub fn stats_prometheus(&mut self) -> DbResult<String> {
        match self.request(&Request::Stats)? {
            Response::Stats { prometheus } => Ok(prometheus),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Stats", &other)),
        }
    }

    fn expect_ok(&mut self, request: &Request) -> DbResult<()> {
        match self.request(request)? {
            Response::Ok => Ok(()),
            Response::Err(e) => Err(e),
            other => Err(unexpected("Ok", &other)),
        }
    }
}

/// Write `request`, read one frame, decode the response. On transport
/// failure the connection is dropped so the caller can re-dial.
fn exchange(
    conn: &mut Option<TcpStream>,
    config: &ClientConfig,
    request: &Request,
) -> DbResult<Response> {
    let stream = conn.as_mut().ok_or_else(|| DbError::Net("not connected".into()))?;
    let result = (|| {
        let mut w = BufWriter::new(&mut *stream);
        write_frame(&mut w, &request.encode()).map_err(|e| frame::io_err("send", &e))?;
        drop(w);
        match read_frame(stream, config.max_frame) {
            Ok(Some(payload)) => Response::decode(&payload),
            Ok(None) => Err(DbError::Net("server closed the connection".into())),
            Err(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
            {
                Err(DbError::Net(format!(
                    "request timed out after {:?}",
                    config.request_timeout
                )))
            }
            Err(e) => Err(frame::io_err("recv", &e)),
        }
    })();
    if matches!(result, Err(DbError::Net(_))) {
        *conn = None;
    }
    result
}

fn unexpected(wanted: &str, got: &Response) -> DbError {
    DbError::Protocol(format!("expected {wanted} response, got {got:?}"))
}
