//! orion-net: the database as a network service.
//!
//! The paper's architecture (§2) assumes a shared server that many
//! design workstations dial into; this crate is that wire. It layers a
//! length-prefixed binary protocol ([`frame`], [`wire`]) over
//! `std::net` blocking sockets, a bounded-worker-pool [`Server`] that
//! exposes the whole `orion_core::Database` facade — queries, DML, DDL,
//! checkout/checkin, the stats scrape — and a blocking [`Client`] with
//! reconnect. Everything that crosses the wire reuses `orion-types`'
//! storage codec, so a remote query result is byte-identical to the
//! in-process one and a remote failure decodes to the *same*
//! [`orion_types::DbError`] variant the facade raised.
//!
//! No async runtime — but no thread-per-session either: a small set of
//! event-loop threads multiplexes every connection over nonblocking
//! sockets and `poll(2)` (see [`poller`]), requests execute on a fixed
//! worker pool, clients may pipeline many requests per connection
//! ([`client::Pipeline`]), and admission control sheds overload with
//! `ServerBusy` instead of queueing without bound. See `DESIGN.md` §8
//! for the frame format, the connection state machine, and the
//! backpressure/shedding policy.
//!
//! ```no_run
//! use std::sync::Arc;
//! use orion_core::Database;
//! use orion_net::{Client, Server, ServerConfig};
//!
//! let db = Arc::new(Database::open_in_memory());
//! let server = Server::bind(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.ping().unwrap();
//! server.shutdown();
//! ```

pub mod client;
pub mod frame;
pub mod poller;
pub mod server;
pub mod wire;

pub use client::{Client, ClientConfig, Pipeline, RetryPolicy};
pub use server::{Server, ServerConfig};
pub use wire::{Request, Response, WorkspaceEntry};
