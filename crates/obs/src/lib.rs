//! orion-obs: the observability substrate.
//!
//! The paper's §3.1 requires that an OODB carry over *all* conventional
//! database facilities — resource management included — and the
//! performance arguments of §3.2/§3.3 (index choice, clustering, cache
//! residency) are only testable when every layer exposes counters. This
//! crate provides the primitives those layers share:
//!
//! * [`Counter`] / [`Gauge`] — single atomics, `Relaxed` ordering, no
//!   locks anywhere.
//! * [`Histogram`] — fixed-bucket latency distribution. Buckets are
//!   compile-time constants so recording is one comparison loop plus two
//!   `fetch_add`s; no allocation, no locking.
//! * [`SpanTimer`] — a start [`Instant`] captured *by the caller*, so a
//!   layer that already holds a timestamp (or measures nothing on the
//!   fast path) never pays for a clock read it didn't ask for. There is
//!   no wall-clock (`SystemTime`) anywhere in this crate.
//! * [`render`] — Prometheus-style text exposition helpers, used by the
//!   facade's `DbStats::render_prometheus`.
//!
//! Concurrency contract: every mutation is a single `Relaxed` atomic
//! RMW, so counters are monotonic under arbitrary thread interleaving
//! (until an explicit `reset`), and snapshots are safe to take from any
//! thread at any time — a snapshot may be mid-update-skewed (e.g. a
//! histogram `count` one ahead of `sum`) but never torn per field.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Count one event.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Count `n` events at once (batch accounting).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }

    /// Reset to zero (between benchmark phases only; breaks monotonicity
    /// by design).
    pub fn reset(&self) {
        self.0.store(0, Relaxed);
    }
}

// ---------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------

/// A last-write-wins instantaneous value (e.g. the parallelism of the
/// most recent query execution).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.0.store(0, Relaxed);
    }
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// Upper bounds (microseconds, inclusive) of the latency buckets; the
/// implicit final bucket is `+Inf`. Chosen to straddle everything from a
/// contended atomic (sub-µs) to a 5 s lock-timeout wait.
pub const BUCKET_BOUNDS_US: [u64; 11] =
    [1, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000, 100_000, 1_000_000];

const NUM_BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1; // + the +Inf bucket

/// A fixed-bucket latency histogram. Recording is lock-free: one linear
/// bucket search over a compile-time array and two `Relaxed` adds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Record one observation of `d`.
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_micros(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record one observation of `us` microseconds.
    #[inline]
    pub fn observe_micros(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(NUM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum_micros.fetch_add(us, Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Relaxed),
            sum_micros: self.sum_micros.load(Relaxed),
            buckets,
        }
    }

    /// Reset every bucket (between benchmark phases).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum_micros.store(0, Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, in microseconds.
    pub sum_micros: u64,
    /// Per-bucket (non-cumulative) counts; the last entry is `+Inf`.
    pub buckets: [u64; NUM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean observation in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// Cumulative `(upper_bound_us, count ≤ bound)` pairs in Prometheus
    /// `le` convention; the final pair uses `u64::MAX` for `+Inf`.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut acc = 0u64;
        BUCKET_BOUNDS_US
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.buckets.iter())
            .map(|(bound, c)| {
                acc += c;
                (bound, acc)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// SpanTimer
// ---------------------------------------------------------------------

/// A lightweight span: the caller supplies both endpoints, so a layer
/// that already read the clock for its own purposes pays nothing extra,
/// and code paths that skip timing never touch the clock at all.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    start: Instant,
}

impl SpanTimer {
    /// A span starting at `start` (typically `Instant::now()` taken by
    /// the caller outside any lock).
    pub fn starting_at(start: Instant) -> Self {
        SpanTimer { start }
    }

    /// The span's duration as of `end` (saturating to zero).
    pub fn elapsed_at(&self, end: Instant) -> Duration {
        end.saturating_duration_since(self.start)
    }

    /// Close the span at `end` and record it into `hist`.
    pub fn record(self, end: Instant, hist: &Histogram) {
        hist.observe(self.elapsed_at(end));
    }
}

// ---------------------------------------------------------------------
// Prometheus-style text exposition
// ---------------------------------------------------------------------

/// Text exposition in the Prometheus format, for scripts that scrape a
/// stats dump rather than consume the structured snapshot.
pub mod render {
    use super::HistogramSnapshot;
    use std::fmt::Write;

    /// Render one counter metric.
    pub fn counter(out: &mut String, name: &str, help: &str, value: u64) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }

    /// Render one gauge metric.
    pub fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }

    /// Render one histogram metric (seconds, per Prometheus convention).
    pub fn histogram(out: &mut String, name: &str, help: &str, snap: &HistogramSnapshot) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (bound, cum) in snap.cumulative() {
            if bound == u64::MAX {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
            } else {
                let le = bound as f64 / 1e6;
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
            }
        }
        let _ = writeln!(out, "{name}_sum {}", snap.sum_micros as f64 / 1e6);
        let _ = writeln!(out, "{name}_count {}", snap.count);
    }

    /// Render one histogram whose observations are plain numbers (a
    /// batch size, a chain length) rather than durations: bucket
    /// bounds and the sum are emitted verbatim, not scaled to seconds.
    pub fn plain_histogram(out: &mut String, name: &str, help: &str, snap: &HistogramSnapshot) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (bound, cum) in snap.cumulative() {
            if bound == u64::MAX {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
            } else {
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
            }
        }
        let _ = writeln!(out, "{name}_sum {}", snap.sum_micros);
        let _ = writeln!(out, "{name}_count {}", snap.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(17);
        assert_eq!(g.get(), 17);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::new();
        h.observe_micros(0); // ≤ 1
        h.observe_micros(1); // ≤ 1
        h.observe_micros(7); // ≤ 10
        h.observe_micros(2_000_000); // +Inf
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_micros, 2_000_008);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[NUM_BUCKETS - 1], 1);
        let cum = s.cumulative();
        assert_eq!(cum.last().unwrap().1, 4, "+Inf is cumulative total");
        assert!((s.mean_micros() - 500_002.0).abs() < 1e-6);
    }

    #[test]
    fn span_timer_uses_caller_instants() {
        let h = Histogram::new();
        let t0 = Instant::now();
        let span = SpanTimer::starting_at(t0);
        span.record(t0 + Duration::from_micros(42), &h);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum_micros, 42);
        // Reversed endpoints saturate instead of panicking.
        let span = SpanTimer::starting_at(t0 + Duration::from_secs(1));
        assert_eq!(span.elapsed_at(t0), Duration::ZERO);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let c = Arc::new(Counter::new());
        let h = Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe_micros(i % 50);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.snapshot().count, 8000);
    }

    #[test]
    fn prometheus_rendering_shapes() {
        let mut out = String::new();
        render::counter(&mut out, "orion_test_total", "a test counter", 9);
        assert!(out.contains("# TYPE orion_test_total counter"));
        assert!(out.contains("orion_test_total 9"));

        let h = Histogram::new();
        h.observe_micros(3);
        let mut out = String::new();
        render::histogram(&mut out, "orion_wait_seconds", "waits", &h.snapshot());
        assert!(out.contains("orion_wait_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(out.contains("orion_wait_seconds_count 1"));
    }
}
