//! Shared workload fixtures and measurement helpers for the orion
//! experiment suite (see DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-claim vs. measured results).

pub mod fixtures;
pub mod measure;

pub use fixtures::*;
pub use measure::*;
