//! Tiny timing and table-printing helpers for the experiments binary.

use std::time::{Duration, Instant};

/// Wall-time one call.
pub fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed(), r)
}

/// Wall-time `n` repetitions; returns per-iteration duration.
pub fn time_per<R>(n: usize, mut f: impl FnMut() -> R) -> Duration {
    assert!(n > 0);
    let start = Instant::now();
    for _ in 0..n {
        std::hint::black_box(f());
    }
    start.elapsed() / n as u32
}

/// Render a duration compactly.
pub fn fmt_dur(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.1} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// A fixed-width experiment table writer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append one row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::from("| ");
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:<width$} | ", cell, width = widths[i]));
            }
            println!("{}", out.trim_end());
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&sep);
        for row in &self.rows {
            line(row);
        }
    }
}
