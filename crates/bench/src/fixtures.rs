//! Synthetic workload builders shared by the experiments binary and the
//! Criterion benches. Deterministic (seeded) so runs are comparable.

use orion_core::{AttrSpec, Database, DbConfig, Domain, Oid, PrimitiveType, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relbase::{ColumnDef, RelDb};

/// Cities used for the `location` attribute; selectivity 1/len each.
pub const CITIES: &[&str] = &[
    "Detroit", "Austin", "Portland", "Kyoto", "Venice", "Boston", "Berkeley", "Orlando",
    "Chicago", "SanJose",
];

fn rng() -> StdRng {
    StdRng::seed_from_u64(0x0D10_1990)
}

/// The Figure-1-style fleet database: `Vehicle` with `k_subclasses`
/// leaf classes under it, `n` vehicle instances spread evenly, and
/// `n / 100` companies (min 1) with locations drawn from [`CITIES`].
///
/// Returns the database and the leaf class names.
pub struct FleetDb {
    /// The database.
    pub db: Database,
    /// Leaf class names (`VehicleKind0`...).
    pub leaf_classes: Vec<String>,
    /// All vehicle OIDs.
    pub vehicles: Vec<Oid>,
    /// All company OIDs.
    pub companies: Vec<Oid>,
}

/// Build a fleet database.
pub fn fleet(n: usize, k_subclasses: usize, config: DbConfig) -> FleetDb {
    let mut rng = rng();
    let db = Database::with_config(config);
    let str_dom = || Domain::Primitive(PrimitiveType::Str);
    let int_dom = || Domain::Primitive(PrimitiveType::Int);

    db.create_class(
        "Company",
        &[],
        vec![AttrSpec::new("cname", str_dom()), AttrSpec::new("location", str_dom())],
    )
    .unwrap();
    let company = db.with_catalog(|c| c.class_id("Company")).unwrap();
    db.create_class(
        "Vehicle",
        &[],
        vec![
            AttrSpec::new("name", str_dom()),
            AttrSpec::new("weight", int_dom()),
            AttrSpec::new("manufacturer", Domain::Class(company)),
        ],
    )
    .unwrap();
    let mut leaf_classes = Vec::new();
    for i in 0..k_subclasses {
        let name = format!("VehicleKind{i}");
        db.create_class(&name, &["Vehicle"], vec![AttrSpec::new(format!("extra{i}"), int_dom())])
            .unwrap();
        leaf_classes.push(name);
    }

    let tx = db.begin();
    let n_companies = (n / 100).max(1);
    let mut companies = Vec::with_capacity(n_companies);
    for c in 0..n_companies {
        companies.push(
            db.create_object(
                &tx,
                "Company",
                vec![
                    ("cname", Value::Str(format!("company{c}"))),
                    ("location", Value::str(CITIES[c % CITIES.len()])),
                ],
            )
            .unwrap(),
        );
    }
    let mut vehicles = Vec::with_capacity(n);
    for i in 0..n {
        let class = &leaf_classes[i % k_subclasses];
        let manu = companies[rng.gen_range(0..companies.len())];
        vehicles.push(
            db.create_object(
                &tx,
                class,
                vec![
                    ("name", Value::Str(format!("vehicle{i}"))),
                    ("weight", Value::Int(i as i64)),
                    ("manufacturer", Value::Ref(manu)),
                ],
            )
            .unwrap(),
        );
    }
    db.commit(tx).unwrap();
    FleetDb { db, leaf_classes, vehicles, companies }
}

/// The relational mirror of [`fleet`]: `vehicle(id, name, weight,
/// company_id)` and `company(id, cname, location)` with indexes on the
/// join keys and on `vehicle.name`.
pub fn fleet_relational(n: usize) -> RelDb {
    let mut rng = rng();
    let db = RelDb::new(256);
    db.create_table(
        "company",
        vec![
            ColumnDef::new("id", PrimitiveType::Int),
            ColumnDef::new("cname", PrimitiveType::Str),
            ColumnDef::new("location", PrimitiveType::Str),
        ],
    )
    .unwrap();
    db.create_table(
        "vehicle",
        vec![
            ColumnDef::new("id", PrimitiveType::Int),
            ColumnDef::new("name", PrimitiveType::Str),
            ColumnDef::new("weight", PrimitiveType::Int),
            ColumnDef::new("company_id", PrimitiveType::Int),
        ],
    )
    .unwrap();
    let txn = db.begin();
    let n_companies = (n / 100).max(1);
    for c in 0..n_companies {
        db.insert(
            txn,
            "company",
            vec![
                Value::Int(c as i64),
                Value::Str(format!("company{c}")),
                Value::str(CITIES[c % CITIES.len()]),
            ],
        )
        .unwrap();
    }
    for i in 0..n {
        db.insert(
            txn,
            "vehicle",
            vec![
                Value::Int(i as i64),
                Value::Str(format!("vehicle{i}")),
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..n_companies) as i64),
            ],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();
    db.create_index("company", "id").unwrap();
    db.create_index("vehicle", "name").unwrap();
    db.create_index("vehicle", "id").unwrap();
    db
}

/// Linked chains for the traversal experiment (E3): `chains` chains of
/// `depth` `Link` objects each (`next` references). Returns the chain
/// heads.
pub fn chains(db: &Database, chains: usize, depth: usize) -> Vec<Oid> {
    db.create_class(
        "Link",
        &[],
        vec![AttrSpec::new("payload", Domain::Primitive(PrimitiveType::Int))],
    )
    .unwrap();
    let link = db.with_catalog(|c| c.class_id("Link")).unwrap();
    db.evolve(
        orion_core::SchemaChange::AddAttribute {
            class: link,
            spec: AttrSpec::new("next", Domain::Class(link)),
        },
        orion_core::Migration::Lazy,
    )
    .unwrap();

    let tx = db.begin();
    let mut heads = Vec::with_capacity(chains);
    for c in 0..chains {
        // Build tail-first so `next` can point at an existing object.
        let mut next: Option<Oid> = None;
        for d in (0..depth).rev() {
            let mut attrs = vec![("payload", Value::Int((c * depth + d) as i64))];
            if let Some(n) = next {
                attrs.push(("next", Value::Ref(n)));
            }
            next = Some(db.create_object(&tx, "Link", attrs).unwrap());
        }
        heads.push(next.expect("depth > 0"));
    }
    db.commit(tx).unwrap();
    heads
}

/// The relational mirror of [`chains`]: `link(id, payload, next_id)`
/// with an index on `id`. Returns the head row keys.
pub fn chains_relational(db: &RelDb, chains: usize, depth: usize) -> Vec<i64> {
    db.create_table(
        "link",
        vec![
            ColumnDef::new("id", PrimitiveType::Int),
            ColumnDef::new("payload", PrimitiveType::Int),
            ColumnDef::new("next_id", PrimitiveType::Int),
        ],
    )
    .unwrap();
    let txn = db.begin();
    let mut heads = Vec::with_capacity(chains);
    for c in 0..chains {
        for d in 0..depth {
            let id = (c * depth + d) as i64;
            let next =
                if d + 1 < depth { Value::Int(id + 1) } else { Value::Null };
            db.insert(txn, "link", vec![Value::Int(id), Value::Int(id), next]).unwrap();
        }
        heads.push((c * depth) as i64);
    }
    db.commit(txn).unwrap();
    db.create_index("link", "id").unwrap();
    heads
}

/// Composite part trees for the clustering experiment (E10):
/// `n_assemblies` assemblies with `parts_each` parts. When
/// `interleaved`, assemblies are built breadth-first (one part per
/// assembly per round) so that without clustering, parts scatter across
/// pages; placement hints pull them back together.
pub fn assemblies(db: &Database, n_assemblies: usize, parts_each: usize, interleaved: bool) -> Vec<Oid> {
    db.create_class(
        "Cell",
        &[],
        vec![
            AttrSpec::new("area", Domain::Primitive(PrimitiveType::Int)),
            // Realistic part payload (geometry blob): makes pages hold
            // only a handful of cells, so placement decides locality.
            AttrSpec::new("geometry", Domain::Primitive(PrimitiveType::Blob)),
        ],
    )
    .unwrap();
    let cell = db.with_catalog(|c| c.class_id("Cell")).unwrap();
    db.create_class(
        "Assembly",
        &[],
        vec![
            AttrSpec::new("title", Domain::Primitive(PrimitiveType::Str)),
            AttrSpec::new("cells", Domain::set_of_class(cell)).composite(),
        ],
    )
    .unwrap();
    let tx = db.begin();
    let roots: Vec<Oid> = (0..n_assemblies)
        .map(|a| {
            db.create_object(&tx, "Assembly", vec![("title", Value::Str(format!("asm{a}")))])
                .unwrap()
        })
        .collect();
    if interleaved {
        for p in 0..parts_each {
            for &root in &roots {
                db.create_part(&tx, root, "cells", "Cell", vec![
                    ("area", Value::Int(p as i64)),
                    ("geometry", Value::Blob(vec![p as u8; 700])),
                ])
                .unwrap();
            }
        }
    } else {
        for &root in &roots {
            for p in 0..parts_each {
                db.create_part(&tx, root, "cells", "Cell", vec![
                    ("area", Value::Int(p as i64)),
                    ("geometry", Value::Blob(vec![p as u8; 700])),
                ])
                .unwrap();
            }
        }
    }
    db.commit(tx).unwrap();
    roots
}

/// A linear class hierarchy of `depth` classes for the dispatch
/// experiment (E7); a method `m` defined only at the root. Returns the
/// leaf class name.
pub fn deep_hierarchy(db: &Database, depth: usize) -> String {
    db.create_class("C0", &[], vec![]).unwrap();
    db.define_method("C0", "m", 0, std::sync::Arc::new(|_, _, _, _| Ok(Value::Int(42))))
        .unwrap();
    let mut prev = "C0".to_owned();
    for d in 1..depth {
        let name = format!("C{d}");
        db.create_class(&name, &[prev.as_str()], vec![]).unwrap();
        prev = name;
    }
    prev
}
