//! Network throughput benchmark: N client threads hammer one server
//! over real sockets and the record lands in `BENCH_net.json` at the
//! workspace root.
//!
//! Each client runs a mixed workload — the Figure 1 hierarchy query and
//! point reads — against a fleet database, measuring per-request
//! latency end to end (encode, socket, server dispatch, decode). The
//! record includes p50/p99 latency, aggregate throughput, the
//! in-process latency of the same query for comparison (the wire tax),
//! and the server-side `net_*` counters scraped over the wire.
//!
//! `--smoke` shrinks the workload to a ~2 second CI sanity run.

use orion_bench::fleet;
use orion_core::{DbConfig, Value};
use orion_net::{Client, Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUERY: &str = "select v from Vehicle* v \
     where v.weight > 500 and v.manufacturer.location = \"Detroit\"";

struct Load {
    objects: usize,
    clients: usize,
    requests_per_client: usize,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let load = if smoke {
        Load { objects: 1_000, clients: 4, requests_per_client: 20 }
    } else {
        Load { objects: 6_000, clients: 4, requests_per_client: 60 }
    };

    let fixture = fleet(load.objects, 4, DbConfig::default());
    let db = Arc::new(fixture.db);
    let vehicles = fixture.vehicles;

    // In-process baseline: what the same query costs without the wire.
    let tx = db.begin();
    db.query(&tx, QUERY).expect("warm");
    let start = Instant::now();
    let expected_rows = db.query(&tx, QUERY).expect("baseline").len();
    let in_process = start.elapsed();
    db.commit(tx).expect("commit");
    assert!(expected_rows > 0, "fixture must produce matches for the bench query");

    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { workers: load.clients, ..ServerConfig::default() },
    )
    .expect("bind");
    let addr = server.local_addr();
    db.reset_metrics(); // count only the measured window

    let requests_per_client = load.requests_per_client;
    let started = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..load.clients)
            .map(|c| {
                let vehicles = &vehicles;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(requests_per_client);
                    for r in 0..requests_per_client {
                        let t = Instant::now();
                        // 1 query per 4 point reads: queries dominate the
                        // tail, reads the median — like a workstation
                        // refreshing one design view while navigating.
                        if r % 4 == 0 {
                            let got = client.query(QUERY).expect("query").len();
                            assert_eq!(got, expected_rows, "wire result diverged");
                        } else {
                            let oid = vehicles[(c * 7919 + r * 131) % vehicles.len()];
                            let w = client.get(oid, "weight").expect("get");
                            assert!(matches!(w, Value::Int(_)));
                        }
                        lat.push(t.elapsed());
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed();
    latencies.sort();
    let total = latencies.len();
    let throughput = total as f64 / elapsed.as_secs_f64();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    // Scrape the server's own view of the run, over the wire.
    let mut probe = Client::connect(addr).expect("probe connect");
    let scrape = probe.stats_prometheus().expect("scrape");
    drop(probe);
    server.shutdown();
    let net = db.stats().net;
    assert!(net.requests >= total as u64, "every request was counted");
    assert!(
        scrape.contains("orion_net_requests_total") && !scrape.contains("orion_net_requests_total 0\n"),
        "prometheus scrape carries live net counters"
    );

    println!(
        "{} clients x {} requests over {} objects: {elapsed:?} ({throughput:.1} req/s)",
        load.clients, load.requests_per_client, load.objects
    );
    println!(
        "latency: p50 {p50:?}, p99 {p99:?}; in-process query baseline {in_process:?} \
         ({expected_rows} rows)"
    );
    println!(
        "server counters: {} requests, {} connections, {} errors, {} timeouts",
        net.requests, net.connections_total, net.errors, net.timeouts
    );

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let note = if cpus < load.clients {
        format!(
            ",\n  \"note\": \"host exposes {cpus} CPU(s); {} clients contend for them, \
             so latencies include scheduling\"",
            load.clients
        )
    } else {
        String::new()
    };
    let json = format!(
        "{{\n  \"bench\": \"net_throughput\",\n  \"smoke\": {smoke},\n  \
         \"objects\": {},\n  \"clients\": {},\n  \"requests_per_client\": {},\n  \
         \"available_parallelism\": {cpus}{note},\n  \
         \"total_requests\": {total},\n  \"elapsed_ms\": {:.3},\n  \
         \"throughput_rps\": {:.1},\n  \
         \"latency\": {{\n    \"p50_ms\": {:.3},\n    \"p99_ms\": {:.3},\n    \
         \"in_process_query_ms\": {:.3}\n  }},\n  \
         \"query_rows\": {expected_rows},\n  \
         \"server\": {{\n    \"requests\": {},\n    \"connections_total\": {},\n    \
         \"errors\": {},\n    \"timeouts\": {},\n    \"busy_rejections\": {}\n  }}\n}}\n",
        load.objects,
        load.clients,
        load.requests_per_client,
        elapsed.as_secs_f64() * 1e3,
        throughput,
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
        in_process.as_secs_f64() * 1e3,
        net.requests,
        net.connections_total,
        net.errors,
        net.timeouts,
        net.busy_rejections,
    );
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    println!("wrote BENCH_net.json");
}
