//! Network throughput benchmark: N client threads hammer one server
//! over real sockets and the record lands in `BENCH_net.json` at the
//! workspace root.
//!
//! Each client runs a mixed workload — the Figure 1 hierarchy query and
//! point reads — against a fleet database, measuring per-request
//! latency end to end (encode, socket, server dispatch, decode). The
//! record includes p50/p99 latency, aggregate throughput, the
//! in-process latency of the same query for comparison (the wire tax),
//! and the server-side `net_*` counters scraped over the wire.
//!
//! A second phase benchmarks the sharded deployment (`orion-shard`):
//! single-shard passthrough overhead against a direct client on the
//! same query, hierarchy fan-out latency across two shards, and
//! cross-shard two-phase-commit throughput. It lands as the
//! `"sharded"` object in the same record; CI gates on the passthrough
//! overhead ratio.
//!
//! A third phase parks ~1.1k mostly-idle connections on the evented
//! core and measures a loaded 4-client subset through the crowd; it
//! lands as `"concurrent_connections"` and CI gates on the open count
//! (and, multi-core only, on the loaded tail staying under the
//! uncrowded 4-client median).
//!
//! `--smoke` shrinks the workload to a ~2 second CI sanity run (the
//! connection crowd stays at full size so the gate stays meaningful).

use orion_bench::fleet;
use orion_core::{AttrSpec, Database, DbConfig, Domain, PrimitiveType, Value};
use orion_net::{Client, Server, ServerConfig};
use orion_shard::{ExplicitPlacement, RouterConfig, ShardRouter};
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUERY: &str = "select v from Vehicle* v \
     where v.weight > 500 and v.manufacturer.location = \"Detroit\"";

struct Load {
    objects: usize,
    clients: usize,
    requests_per_client: usize,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Median latency of `n` runs of `f`.
fn p50_of(n: usize, mut f: impl FnMut()) -> Duration {
    let mut lat = Vec::with_capacity(n);
    for _ in 0..n {
        let t = Instant::now();
        f();
        lat.push(t.elapsed());
    }
    lat.sort();
    percentile(&lat, 0.50)
}

/// The sharded phase: 2 in-memory shards behind a router. Returns the
/// `"sharded"` JSON object (keys on single lines for the sed gates).
fn sharded_section(smoke: bool) -> String {
    let objects = if smoke { 300 } else { 1_500 }; // per subclass
    let queries = if smoke { 30 } else { 120 };
    let txns = if smoke { 40 } else { 200 };

    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..2 {
        let db = Arc::new(Database::open_in_memory());
        let server = Server::bind(db, "127.0.0.1:0", ServerConfig::default()).expect("bind");
        addrs.push(server.local_addr());
        servers.push(server);
    }
    let router = ShardRouter::connect(
        &addrs,
        RouterConfig {
            placement: Box::new(ExplicitPlacement::new([
                ("Item", 0usize),
                ("ItemA", 0usize),
                ("ItemB", 1usize),
                ("AcctA", 0usize),
                ("AcctB", 1usize),
            ])),
            ..RouterConfig::default()
        },
    )
    .expect("router");

    let weight = vec![AttrSpec::new("weight", Domain::Primitive(PrimitiveType::Int))];
    router.create_class("Item", &[], weight.clone()).expect("ddl");
    router.create_class("ItemA", &["Item"], vec![]).expect("ddl");
    router.create_class("ItemB", &["Item"], vec![]).expect("ddl");
    for i in 0..objects {
        router.create_object("ItemA", vec![("weight", Value::Int(i as i64))]).expect("seed");
        router
            .create_object("ItemB", vec![("weight", Value::Int((i + objects) as i64))])
            .expect("seed");
    }

    const PASS_Q: &str = "select i.weight from ItemA i order by i.weight desc limit 10";
    const FAN_Q: &str = "select i.weight from Item* i order by i.weight desc limit 10";

    // Direct baseline: the same single-shard query without the router.
    let mut direct = Client::connect(addrs[0]).expect("direct connect");
    direct.query(PASS_Q).expect("warm");
    let direct_p50 = p50_of(queries, || {
        assert_eq!(direct.query(PASS_Q).expect("direct").len(), 10);
    });

    router.query(PASS_Q).expect("warm");
    let passthrough_p50 = p50_of(queries, || {
        assert_eq!(router.query(PASS_Q).expect("passthrough").len(), 10);
    });
    let fanout_p50 = p50_of(queries, || {
        let r = router.query(FAN_Q).expect("fanout");
        assert_eq!(r.rows.len(), 10);
        // Global top-10 comes entirely from ItemB's higher weights.
        assert_eq!(r.rows[0][0], Value::Int(2 * objects as i64 - 1));
    });
    let overhead = passthrough_p50.as_secs_f64() / direct_p50.as_secs_f64();

    // Cross-shard 2PC throughput: every transfer touches both shards.
    router.create_class("AcctA", &[], weight.clone()).expect("ddl");
    router.create_class("AcctB", &[], weight).expect("ddl");
    let a = router.create_object("AcctA", vec![("weight", Value::Int(1_000_000))]).expect("a");
    let b = router.create_object("AcctB", vec![("weight", Value::Int(0))]).expect("b");
    let started = Instant::now();
    for _ in 0..txns {
        let mut tx = router.begin();
        let from = tx.get(a, "weight").expect("get").as_int().unwrap();
        let to = tx.get(b, "weight").expect("get").as_int().unwrap();
        tx.set(a, "weight", Value::Int(from - 1)).expect("set");
        tx.set(b, "weight", Value::Int(to + 1)).expect("set");
        tx.commit().expect("2pc commit");
    }
    let twopc_elapsed = started.elapsed();
    let twopc_rate = txns as f64 / twopc_elapsed.as_secs_f64();
    assert_eq!(
        router.get(a, "weight").expect("a").as_int().unwrap()
            + router.get(b, "weight").expect("b").as_int().unwrap(),
        1_000_000,
        "2PC conservation"
    );
    assert_eq!(router.metrics().txns_2pc.get(), txns as u64);
    assert_eq!(router.metrics().commit_push_failures.get(), 0);

    println!(
        "sharded: direct p50 {direct_p50:?}, passthrough p50 {passthrough_p50:?} \
         ({overhead:.2}x), fan-out p50 {fanout_p50:?}, 2PC {twopc_rate:.1} txn/s"
    );
    for s in servers {
        s.shutdown();
    }
    format!(
        "{{\n    \"shards\": 2,\n    \"objects_per_subclass\": {objects},\n    \
         \"direct_p50_ms\": {:.3},\n    \"passthrough_p50_ms\": {:.3},\n    \
         \"passthrough_overhead_ratio\": {overhead:.3},\n    \
         \"fanout_p50_ms\": {:.3},\n    \"twopc_txns\": {txns},\n    \
         \"twopc_txns_per_s\": {twopc_rate:.1}\n  }}",
        direct_p50.as_secs_f64() * 1e3,
        passthrough_p50.as_secs_f64() * 1e3,
        fanout_p50.as_secs_f64() * 1e3,
    )
}

/// The concurrent-connections phase: park ~1.1k mostly-idle sessions
/// on one server's event loops, then drive a 4-client point-read
/// workload through the crowd. The evented core's promise is that
/// parked connections cost a poll slot, not a thread, so the loaded
/// subset's tail should stay near the uncrowded 4-client baseline.
/// Returns the `"concurrent_connections"` JSON object (keys on single
/// lines for the sed gates).
fn concurrent_section(smoke: bool, baseline_4client_p50: Duration) -> String {
    let target = 1_100usize;
    let loaded_clients = 4usize;
    let requests = if smoke { 100 } else { 400 };

    let db = Arc::new(Database::open_in_memory());
    db.create_class("KV", &[], vec![AttrSpec::new("v", Domain::Primitive(PrimitiveType::Int))])
        .expect("ddl");
    let tx = db.begin();
    let oid = db.create_object(&tx, "KV", vec![("v", Value::Int(7))]).expect("seed");
    db.commit(tx).expect("commit");

    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 2 * target,
            idle_timeout: Duration::from_secs(600),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // Park the crowd: each connect + ping forces the dial so the
    // session is registered on an event loop before we move on.
    let mut parked = Vec::with_capacity(target - loaded_clients);
    for _ in 0..target - loaded_clients {
        let mut c = Client::connect(addr).expect("parked connect");
        c.ping().expect("parked ping");
        parked.push(c);
    }

    let mut latencies: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..loaded_clients)
            .map(|_| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("loaded connect");
                    client.ping().expect("loaded ping");
                    let mut lat = Vec::with_capacity(requests);
                    for _ in 0..requests {
                        let t = Instant::now();
                        let v = client.get(oid, "v").expect("get");
                        assert_eq!(v, Value::Int(7));
                        lat.push(t.elapsed());
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("loaded thread")).collect()
    });
    let open = server.active_connections();
    assert!(
        open >= 1_000,
        "crowd fell short: {open} connections open (wanted >= 1000 of {target})"
    );
    latencies.sort();
    let loaded_p50 = percentile(&latencies, 0.50);
    let loaded_p99 = percentile(&latencies, 0.99);

    drop(parked);
    server.shutdown();

    // On a single hardware thread the parked crowd, the loaded
    // clients, and the server's loops all contend for one core, so the
    // tail measures the scheduler, not the event loop; the p99 gate is
    // only meaningful (and only enforced by ci.sh) on multi-core.
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let enforced = cpus > 1;

    println!(
        "concurrent connections: {open} open; loaded subset of {loaded_clients}: \
         p50 {loaded_p50:?}, p99 {loaded_p99:?} (uncrowded 4-client p50 \
         {baseline_4client_p50:?}, gate {})",
        if enforced { "enforced" } else { "skipped: core-bound" }
    );
    format!(
        "{{\n    \"open_connections\": {open},\n    \"target_connections\": {target},\n    \
         \"loaded_clients\": {loaded_clients},\n    \"loaded_requests_per_client\": {requests},\n    \
         \"loaded_p50_ms\": {:.3},\n    \"loaded_p99_ms\": {:.3},\n    \
         \"baseline_4client_p50_ms\": {:.3},\n    \"concurrent_gate_enforced\": {enforced}\n  }}",
        loaded_p50.as_secs_f64() * 1e3,
        loaded_p99.as_secs_f64() * 1e3,
        baseline_4client_p50.as_secs_f64() * 1e3,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let load = if smoke {
        Load { objects: 1_000, clients: 4, requests_per_client: 20 }
    } else {
        Load { objects: 6_000, clients: 4, requests_per_client: 60 }
    };

    let fixture = fleet(load.objects, 4, DbConfig::default());
    let db = Arc::new(fixture.db);
    let vehicles = fixture.vehicles;

    // In-process baseline: what the same query costs without the wire.
    let tx = db.begin();
    db.query(&tx, QUERY).expect("warm");
    let start = Instant::now();
    let expected_rows = db.query(&tx, QUERY).expect("baseline").len();
    let in_process = start.elapsed();
    db.commit(tx).expect("commit");
    assert!(expected_rows > 0, "fixture must produce matches for the bench query");

    let server = Server::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { workers: load.clients, ..ServerConfig::default() },
    )
    .expect("bind");
    let addr = server.local_addr();
    db.reset_metrics(); // count only the measured window

    let requests_per_client = load.requests_per_client;
    let started = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..load.clients)
            .map(|c| {
                let vehicles = &vehicles;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(requests_per_client);
                    for r in 0..requests_per_client {
                        let t = Instant::now();
                        // 1 query per 4 point reads: queries dominate the
                        // tail, reads the median — like a workstation
                        // refreshing one design view while navigating.
                        if r % 4 == 0 {
                            let got = client.query(QUERY).expect("query").len();
                            assert_eq!(got, expected_rows, "wire result diverged");
                        } else {
                            let oid = vehicles[(c * 7919 + r * 131) % vehicles.len()];
                            let w = client.get(oid, "weight").expect("get");
                            assert!(matches!(w, Value::Int(_)));
                        }
                        lat.push(t.elapsed());
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed();
    latencies.sort();
    let total = latencies.len();
    let throughput = total as f64 / elapsed.as_secs_f64();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    // Scrape the server's own view of the run, over the wire.
    let mut probe = Client::connect(addr).expect("probe connect");
    let scrape = probe.stats_prometheus().expect("scrape");
    drop(probe);
    server.shutdown();
    let net = db.stats().net;
    assert!(net.requests >= total as u64, "every request was counted");
    assert!(
        scrape.contains("orion_net_requests_total") && !scrape.contains("orion_net_requests_total 0\n"),
        "prometheus scrape carries live net counters"
    );

    println!(
        "{} clients x {} requests over {} objects: {elapsed:?} ({throughput:.1} req/s)",
        load.clients, load.requests_per_client, load.objects
    );
    println!(
        "latency: p50 {p50:?}, p99 {p99:?}; in-process query baseline {in_process:?} \
         ({expected_rows} rows)"
    );
    println!(
        "server counters: {} requests, {} connections, {} errors, {} timeouts",
        net.requests, net.connections_total, net.errors, net.timeouts
    );

    let sharded = sharded_section(smoke);
    let concurrent = concurrent_section(smoke, p50);

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let note = if cpus < load.clients {
        format!(
            ",\n  \"note\": \"host exposes {cpus} CPU(s); {} clients contend for them, \
             so latencies include scheduling\"",
            load.clients
        )
    } else {
        String::new()
    };
    let json = format!(
        "{{\n  \"bench\": \"net_throughput\",\n  \"smoke\": {smoke},\n  \
         \"objects\": {},\n  \"clients\": {},\n  \"requests_per_client\": {},\n  \
         \"available_parallelism\": {cpus}{note},\n  \
         \"total_requests\": {total},\n  \"elapsed_ms\": {:.3},\n  \
         \"throughput_rps\": {:.1},\n  \
         \"latency\": {{\n    \"p50_ms\": {:.3},\n    \"p99_ms\": {:.3},\n    \
         \"in_process_query_ms\": {:.3}\n  }},\n  \
         \"query_rows\": {expected_rows},\n  \
         \"server\": {{\n    \"requests\": {},\n    \"connections_total\": {},\n    \
         \"errors\": {},\n    \"timeouts\": {},\n    \"busy_rejections\": {}\n  }},\n  \
         \"sharded\": {sharded},\n  \
         \"concurrent_connections\": {concurrent}\n}}\n",
        load.objects,
        load.clients,
        load.requests_per_client,
        elapsed.as_secs_f64() * 1e3,
        throughput,
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
        in_process.as_secs_f64() * 1e3,
        net.requests,
        net.connections_total,
        net.errors,
        net.timeouts,
        net.busy_rejections,
    );
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    println!("wrote BENCH_net.json");
}
