//! The experiment harness: regenerates every table in EXPERIMENTS.md.
//!
//! Each experiment reproduces one performance claim or architectural
//! prediction of Won Kim, "Research Directions in Object-Oriented
//! Database Systems" (PODS 1990) — see DESIGN.md §3 for the index.
//!
//! Run all:    `cargo run -p orion-bench --release --bin experiments`
//! Run some:   `cargo run -p orion-bench --release --bin experiments -- e1 e3`

use orion_bench::{assemblies, chains, chains_relational, deep_hierarchy, fleet,
    fleet_relational, fmt_dur, time, time_per, Table};
use orion_core::{
    var, AttrSpec, AuthAction, AuthTarget, Database, DbConfig, Domain, IndexKind,
    LockingStrategy, Migration, Oid, PrimitiveType, Rule, RuleAtom, SchemaChange, Value,
};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    let experiments: Vec<(&str, &str, fn())> = vec![
        ("f1", "Figure 1: the paper's schema and query", f1),
        ("e1", "class-hierarchy index vs per-class indexes vs scan", e1),
        ("e2", "nested-attribute index vs forward traversal", e2),
        ("e3", "swizzled navigation vs relational joins", e3),
        ("e4", "optimizer access-path selection", e4),
        ("e5", "simple database operations (RUBE87) — orion vs relbase", e5),
        ("e6", "schema evolution: lazy vs eager migration", e6),
        ("e7", "late binding: dispatch cost and the method cache", e7),
        ("e8", "granular vs coarse locking under concurrency", e8),
        ("e9", "versions and composite locks", e9),
        ("e10", "composite clustering vs scattered placement", e10),
        ("e11", "authorization overhead and view filtering", e11),
        ("e12", "deductive rules: semi-naive vs naive evaluation", e12),
        ("e13", "recovery: durability and checkpoint effect", e13),
        ("e14", "multidatabase: native vs federated access", e14),
    ];
    for (name, title, f) in experiments {
        if want(name) {
            println!("\n=== {} — {} ===", name.to_uppercase(), title);
            f();
        }
    }
}

/// Build the canonical fleet DB used by several experiments.
fn default_fleet(n: usize, k: usize) -> orion_bench::FleetDb {
    fleet(n, k, DbConfig::default())
}

// ---------------------------------------------------------------------------
// F1
// ---------------------------------------------------------------------------

fn f1() {
    let f = default_fleet(5_000, 4);
    let db = &f.db;
    let tx = db.begin();
    let q = "select count(*) from Vehicle* v \
             where v.weight > 2500 and v.manufacturer.location = \"Detroit\"";
    let (dur, result) = time(|| db.query(&tx, q).unwrap());
    println!("query : {q}");
    println!("plan  : {}", db.explain(&tx, q).unwrap());
    println!("result: {} vehicles in {}", result.rows[0][0], fmt_dur(dur));
    db.commit(tx).unwrap();
}

// ---------------------------------------------------------------------------
// E1 — class-hierarchy indexing (§3.2, [KIM89b])
// ---------------------------------------------------------------------------

fn e1() {
    const N: usize = 40_000;
    const K: usize = 8;
    let f = default_fleet(N, K);
    let db = &f.db;
    // One CH index at the root...
    db.create_index("ch_weight", IndexKind::ClassHierarchy, "Vehicle", &["weight"]).unwrap();
    // ...versus one SC index per class (the relational design).
    for class in &f.leaf_classes {
        db.create_index(&format!("sc_{class}"), IndexKind::SingleClass, class, &["weight"])
            .unwrap();
    }

    let lo = (N / 2) as i64;
    let hi = lo + (N / 100) as i64; // 1% selectivity
    let hierarchy_q =
        format!("select count(*) from Vehicle* v where v.weight >= {lo} and v.weight < {hi}");
    let single_q = |class: &str| {
        format!("select count(*) from {class} v where v.weight >= {lo} and v.weight < {hi}")
    };

    let mut table = Table::new(&["query scope", "access method", "time", "rows"]);

    // (a) hierarchy query through the CH index.
    let tx = db.begin();
    let (d, r) = time(|| db.query(&tx, &hierarchy_q).unwrap());
    table.row(vec![
        format!("hierarchy ({K} classes)"),
        "one class-hierarchy index".into(),
        fmt_dur(d),
        r.rows[0][0].to_string(),
    ]);
    db.commit(tx).unwrap();

    // (b) hierarchy query emulating per-class indexes: K probes + union.
    let tx = db.begin();
    let (d, total) = time(|| {
        f.leaf_classes
            .iter()
            .map(|class| {
                db.query(&tx, &single_q(class)).unwrap().rows[0][0].as_int().unwrap()
            })
            .sum::<i64>()
    });
    table.row(vec![
        format!("hierarchy ({K} classes)"),
        format!("{K} single-class indexes"),
        fmt_dur(d),
        total.to_string(),
    ]);
    db.commit(tx).unwrap();

    // (c) hierarchy query by extent scan (drop all indexes).
    db.drop_index("ch_weight").unwrap();
    for class in &f.leaf_classes {
        db.drop_index(&format!("sc_{class}")).unwrap();
    }
    let tx = db.begin();
    let (d, r) = time(|| db.query(&tx, &hierarchy_q).unwrap());
    table.row(vec![
        format!("hierarchy ({K} classes)"),
        "extent scan".into(),
        fmt_dur(d),
        r.rows[0][0].to_string(),
    ]);
    db.commit(tx).unwrap();

    // (d) single-class query: CH vs SC index (the CH directory tax).
    db.create_index("ch_weight", IndexKind::ClassHierarchy, "Vehicle", &["weight"]).unwrap();
    let class0 = &f.leaf_classes[0];
    let tx = db.begin();
    let (d, r) = time(|| db.query(&tx, &single_q(class0)).unwrap());
    table.row(vec![
        "single class".into(),
        "class-hierarchy index".into(),
        fmt_dur(d),
        r.rows[0][0].to_string(),
    ]);
    db.commit(tx).unwrap();
    db.create_index("sc_one", IndexKind::SingleClass, class0, &["weight"]).unwrap();
    let tx = db.begin();
    let (d, r) = time(|| db.query(&tx, &single_q(class0)).unwrap());
    table.row(vec![
        "single class".into(),
        "single-class index".into(),
        fmt_dur(d),
        r.rows[0][0].to_string(),
    ]);
    db.commit(tx).unwrap();
    table.print();
}

// ---------------------------------------------------------------------------
// E2 — nested-attribute indexing (§3.2, [BERT89])
// ---------------------------------------------------------------------------

fn e2() {
    const N: usize = 40_000;
    let f = default_fleet(N, 4);
    let db = &f.db;
    let q = "select count(*) from Vehicle* v where v.manufacturer.location = \"Detroit\"";

    let mut table = Table::new(&["access method", "time", "rows", "objects fetched"]);
    let tx = db.begin();
    db.reset_metrics();
    let (d, r) = time(|| db.query(&tx, q).unwrap());
    table.row(vec![
        "forward traversal per object".into(),
        fmt_dur(d),
        r.rows[0][0].to_string(),
        db.stats().fetches.to_string(),
    ]);
    db.commit(tx).unwrap();

    db.create_index("loc", IndexKind::Nested, "Vehicle", &["manufacturer", "location"]).unwrap();
    let tx = db.begin();
    db.reset_metrics();
    let (d, r) = time(|| db.query(&tx, q).unwrap());
    table.row(vec![
        "nested-attribute index".into(),
        fmt_dur(d),
        r.rows[0][0].to_string(),
        db.stats().fetches.to_string(),
    ]);
    db.commit(tx).unwrap();
    table.print();

    // Maintenance correctness under intermediate update, and its cost.
    let tx = db.begin();
    let city_move = f.companies[0];
    let (d, ()) = time(|| db.set(&tx, city_move, "location", Value::str("Flint")).unwrap());
    println!("re-keying all roots after one company moved: {}", fmt_dur(d));
    db.commit(tx).unwrap();
}

// ---------------------------------------------------------------------------
// E3 — swizzling vs joins (§3.3, [MAIE89a])
// ---------------------------------------------------------------------------

fn e3() {
    const CHAINS: usize = 400;
    const DEPTH: usize = 6;

    let mut table =
        Table::new(&["engine / mode", "cache", "per-traversal", "speedup vs joins"]);

    // Relational baseline: one index probe per hop.
    let rel = relbase::RelDb::new(256);
    let heads = chains_relational(&rel, CHAINS, DEPTH);
    let rel_probe = |head: i64| {
        let mut cur = Value::Int(head);
        for _ in 0..DEPTH - 1 {
            let rows = rel.select_eq("link", "id", &cur).unwrap();
            cur = rows[0].1[2].clone();
        }
        cur
    };
    // Warm the pool.
    for &h in &heads {
        std::hint::black_box(rel_probe(h));
    }
    let rel_time = time_per(heads.len(), || {
        for &h in &heads {
            std::hint::black_box(rel_probe(h));
        }
    }) / heads.len() as u32
        * heads.len() as u32; // keep units obvious
    let rel_per = time_per(1, || {
        for &h in &heads {
            std::hint::black_box(rel_probe(h));
        }
    }) / heads.len() as u32;
    let _ = rel_time;
    table.row(vec![
        "relbase: index probe per hop".into(),
        "warm".into(),
        fmt_dur(rel_per),
        "1.0x".into(),
    ]);

    // The paper's actual complaint (§3.3): without index support the
    // application expresses each hop as a join — a scan per hop. Probe
    // a small sample; extrapolation is linear.
    let rel2 = relbase::RelDb::new(256);
    let heads2 = chains_relational(&rel2, CHAINS, DEPTH);
    // (chains_relational builds the id index; drop it by rebuilding the
    // probe against the unindexed payload column instead.)
    let scan_probe = |head: i64| {
        let mut cur = Value::Int(head);
        for _ in 0..DEPTH - 1 {
            let rows = rel2.select_eq("link", "payload", &cur).unwrap();
            cur = rows[0].1[2].clone();
        }
        cur
    };
    let sample = &heads2[..heads2.len().min(25)];
    let scan_per = time_per(1, || {
        for &h in sample {
            std::hint::black_box(scan_probe(h));
        }
    }) / sample.len() as u32;
    table.row(vec![
        "relbase: unindexed join (scan per hop)".into(),
        "warm".into(),
        fmt_dur(scan_per),
        format!("{:.2}x", rel_per.as_nanos() as f64 / scan_per.as_nanos().max(1) as f64),
    ]);

    // orion with and without swizzling.
    for swizzling in [true, false] {
        let config = DbConfig {
            swizzling,
            cache_objects: CHAINS * DEPTH + 64,
            ..DbConfig::default()
        };
        let db = Database::with_config(config);
        let heads = chains(&db, CHAINS, DEPTH);
        let path: Vec<&str> = std::iter::repeat_n("next", DEPTH - 1).collect();
        let tx = db.begin();
        // Cold run (first touch faults everything in).
        db.cool_caches().unwrap();
        db.reset_metrics();
        let cold = time_per(1, || {
            for &h in &heads {
                std::hint::black_box(db.navigate(&tx, h, &path).unwrap());
            }
        }) / heads.len() as u32;
        // Warm runs.
        let warm = time_per(8, || {
            for &h in &heads {
                std::hint::black_box(db.navigate(&tx, h, &path).unwrap());
            }
        }) / heads.len() as u32;
        let stats = db.stats().cache;
        let label = if swizzling { "orion: swizzled pointers" } else { "orion: OID hash per hop" };
        table.row(vec![
            label.into(),
            "cold".into(),
            fmt_dur(cold),
            format!("{:.1}x", rel_per.as_nanos() as f64 / cold.as_nanos().max(1) as f64),
        ]);
        table.row(vec![
            label.into(),
            "warm".into(),
            fmt_dur(warm),
            format!("{:.1}x", rel_per.as_nanos() as f64 / warm.as_nanos().max(1) as f64),
        ]);
        if swizzling {
            println!(
                "swizzled hops: {} / unswizzled: {} (warm traversals all swizzle)",
                stats.swizzled_hops, stats.unswizzled_hops
            );
        }
        db.commit(tx).unwrap();
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E4 — the optimizer picks access paths (§3.3 point 3)
// ---------------------------------------------------------------------------

fn e4() {
    const N: usize = 20_000;
    let f = default_fleet(N, 4);
    let db = &f.db;
    db.create_index("ch_weight", IndexKind::ClassHierarchy, "Vehicle", &["weight"]).unwrap();
    db.create_index("sc_name0", IndexKind::SingleClass, &f.leaf_classes[0], &["name"]).unwrap();
    db.create_index("loc", IndexKind::Nested, "Vehicle", &["manufacturer", "location"]).unwrap();

    let queries = [
        "select count(*) from Vehicle* v where v.weight = 777",
        "select count(*) from Vehicle* v where v.weight >= 100 and v.weight < 300",
        &format!("select count(*) from {} v where v.name = \"vehicle4\"", f.leaf_classes[0]),
        "select count(*) from Vehicle* v where v.manufacturer.location = \"Kyoto\"",
        "select count(*) from Vehicle* v where v.manufacturer.cname like \"company1%\"",
        "select count(*) from VehicleKind1 v where v.name = \"vehicle5\"",
    ];
    let mut table = Table::new(&["query (where-clause)", "chosen plan", "time"]);
    let tx = db.begin();
    for q in queries {
        let plan = db.explain(&tx, q).unwrap().to_string();
        let (d, _) = time(|| db.query(&tx, q).unwrap());
        let clause = q.split(" where ").nth(1).unwrap_or(q);
        table.row(vec![clause.to_string(), plan, fmt_dur(d)]);
    }
    db.commit(tx).unwrap();
    table.print();
}

// ---------------------------------------------------------------------------
// E5 — simple database operations ([RUBE87], §5.6)
// ---------------------------------------------------------------------------

fn e5() {
    const N: usize = 20_000;
    const PROBES: usize = 500;
    let f = default_fleet(N, 4);
    let db = &f.db;
    db.create_index("byname", IndexKind::ClassHierarchy, "Vehicle", &["name"]).unwrap();
    let rel = fleet_relational(N);

    let mut table = Table::new(&["operation", "orion", "relbase", "ratio (rel/orion)"]);

    // (1) Name lookup — parsed per call, and prepared once.
    let tx = db.begin();
    let orion_lookup = time_per(PROBES, || {
        let i = 17 * 31 % N;
        db.query(&tx, &format!("select v from Vehicle* v where v.name = \"vehicle{i}\""))
            .unwrap()
    });
    let prepared = db
        .prepare_query(&tx, "select v from Vehicle* v where v.name = \"vehicle527\"")
        .unwrap();
    let orion_prepared = time_per(PROBES, || db.execute_prepared(&prepared).unwrap());
    db.commit(tx).unwrap();
    let rel_lookup = time_per(PROBES, || {
        let i = 17 * 31 % N;
        rel.select_eq("vehicle", "name", &Value::Str(format!("vehicle{i}"))).unwrap()
    });
    table.row(vec![
        "name lookup (parse + plan + probe)".into(),
        fmt_dur(orion_lookup),
        fmt_dur(rel_lookup),
        format!("{:.1}x", rel_lookup.as_nanos() as f64 / orion_lookup.as_nanos().max(1) as f64),
    ]);
    table.row(vec![
        "name lookup (prepared)".into(),
        fmt_dur(orion_prepared),
        fmt_dur(rel_lookup),
        format!("{:.1}x", rel_lookup.as_nanos() as f64 / orion_prepared.as_nanos().max(1) as f64),
    ]);

    // (2) One-hop reference traversal (vehicle -> its manufacturer).
    let tx = db.begin();
    let sample: Vec<Oid> = f.vehicles.iter().step_by(N / PROBES).copied().collect();
    // Warm once.
    for &v in &sample {
        std::hint::black_box(db.navigate(&tx, v, &["manufacturer"]).unwrap());
    }
    let orion_hop = time_per(1, || {
        for &v in &sample {
            std::hint::black_box(db.navigate(&tx, v, &["manufacturer"]).unwrap());
        }
    }) / sample.len() as u32;
    db.commit(tx).unwrap();
    let rel_rows: Vec<i64> =
        (0..N).step_by(N / PROBES).map(|i| i as i64).collect();
    let rel_hop = time_per(1, || {
        for &id in &rel_rows {
            let v = rel.select_eq("vehicle", "id", &Value::Int(id)).unwrap();
            let cid = v[0].1[3].clone();
            std::hint::black_box(rel.select_eq("company", "id", &cid).unwrap());
        }
    }) / rel_rows.len() as u32;
    table.row(vec![
        "1-hop reference traversal".into(),
        fmt_dur(orion_hop),
        fmt_dur(rel_hop),
        format!("{:.1}x", rel_hop.as_nanos() as f64 / orion_hop.as_nanos().max(1) as f64),
    ]);

    // (3) Insert.
    let tx = db.begin();
    let mut i = N;
    let orion_insert = time_per(PROBES, || {
        i += 1;
        db.create_object(
            &tx,
            &f.leaf_classes[0],
            vec![("name", Value::Str(format!("vehicle{i}"))), ("weight", Value::Int(i as i64))],
        )
        .unwrap()
    });
    db.commit(tx).unwrap();
    let txn = rel.begin();
    let mut j = N;
    let rel_insert = time_per(PROBES, || {
        j += 1;
        rel.insert(
            txn,
            "vehicle",
            vec![
                Value::Int(j as i64),
                Value::Str(format!("vehicle{j}")),
                Value::Int(j as i64),
                Value::Int(0),
            ],
        )
        .unwrap()
    });
    rel.commit(txn).unwrap();
    table.row(vec![
        "insert (indexed attr)".into(),
        fmt_dur(orion_insert),
        fmt_dur(rel_insert),
        format!("{:.1}x", rel_insert.as_nanos() as f64 / orion_insert.as_nanos().max(1) as f64),
    ]);
    table.print();
}

// ---------------------------------------------------------------------------
// E6 — schema evolution migration policies (§5.1, [BANE87])
// ---------------------------------------------------------------------------

fn e6() {
    const N: usize = 40_000;
    let mut table =
        Table::new(&["change", "policy", "DDL time", "first full read after"]);
    for eager in [false, true] {
        let f = default_fleet(N, 4);
        let db = &f.db;
        let vehicle = db.with_catalog(|c| c.class_id("Vehicle")).unwrap();
        let policy = if eager { Migration::Eager } else { Migration::Lazy };
        let (ddl, ()) = time(|| {
            db.evolve(
                SchemaChange::AddAttribute {
                    class: vehicle,
                    spec: AttrSpec::new("color", Domain::Primitive(PrimitiveType::Str))
                        .with_default(Value::str("black")),
                },
                policy,
            )
            .unwrap()
        });
        let tx = db.begin();
        let (touch, _) = time(|| {
            db.query(&tx, "select count(*) from Vehicle* v where v.color = \"black\"").unwrap()
        });
        db.commit(tx).unwrap();
        table.row(vec![
            format!("add attribute ({N} instances)"),
            format!("{policy:?}"),
            fmt_dur(ddl),
            fmt_dur(touch),
        ]);

        let (ddl, ()) = time(|| {
            db.evolve(
                SchemaChange::DropAttribute { class: vehicle, name: "color".into() },
                policy,
            )
            .unwrap()
        });
        let tx = db.begin();
        let (touch, _) =
            time(|| db.query(&tx, "select count(*) from Vehicle* v").unwrap());
        db.commit(tx).unwrap();
        table.row(vec![
            format!("drop attribute ({N} instances)"),
            format!("{policy:?}"),
            fmt_dur(ddl),
            fmt_dur(touch),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E7 — late binding (§3.1 concept 6, §4.2)
// ---------------------------------------------------------------------------

fn e7() {
    const CALLS: usize = 200_000;
    let mut table = Table::new(&["hierarchy depth", "method cache", "per-dispatch"]);
    for depth in [1usize, 4, 16] {
        for cache in [true, false] {
            let db = Database::open_in_memory();
            let leaf = deep_hierarchy(&db, depth);
            db.with_catalog_mut(|c| c.set_method_cache_enabled(cache));
            let tx = db.begin();
            let obj = db.create_object(&tx, &leaf, vec![]).unwrap();
            let class = obj.class();
            // Tight loop on resolution itself (the dispatch mechanism).
            let per = db.with_catalog(|c| {
                time_per(CALLS, || c.resolve_method(class, "m").unwrap())
            });
            // Sanity: the full message send works too.
            assert_eq!(db.call(&tx, obj, "m", &[]).unwrap(), Value::Int(42));
            db.commit(tx).unwrap();
            table.row(vec![
                depth.to_string(),
                if cache { "on" } else { "off" }.into(),
                fmt_dur(per),
            ]);
        }
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E8 — lock granularity under concurrency ([GARZ88])
// ---------------------------------------------------------------------------

fn e8() {
    const THREADS: usize = 4;
    const OPS: usize = 150;
    // The paper's motivating transactions are compute-intensive (CAx):
    // each reads an object, computes, and writes it back. The think
    // time is what granular locking lets disjoint writers overlap —
    // a coarse class lock serializes it.
    const THINK: Duration = Duration::from_micros(20);
    fn think() {
        let start = std::time::Instant::now();
        while start.elapsed() < THINK {
            std::hint::spin_loop();
        }
    }
    let mut table =
        Table::new(&["locking strategy", "threads", "total time", "txns/sec", "deadlock aborts"]);
    for strategy in [LockingStrategy::Granular, LockingStrategy::CoarseClass] {
        let config = DbConfig {
            locking: strategy,
            lock_timeout: Duration::from_secs(30),
            ..DbConfig::default()
        };
        let f = fleet(THREADS * OPS, 1, config);
        let db = &f.db;
        let aborts = std::sync::atomic::AtomicU64::new(0);
        let (d, ()) = time(|| {
            crossbeam::scope(|scope| {
                for t in 0..THREADS {
                    let vehicles = &f.vehicles;
                    let aborts = &aborts;
                    scope.spawn(move |_| {
                        for i in 0..OPS {
                            let oid = vehicles[t * OPS + i];
                            // Retry loop: under coarse locking, two
                            // read-then-write transactions on the same
                            // class deadlock on the S->X upgrade; the
                            // victim aborts and retries.
                            loop {
                                let tx = db.begin();
                                let step = || -> orion_types::DbResult<()> {
                                    let w = db.get(&tx, oid, "weight")?.as_int().unwrap();
                                    think(); // "compute" while holding the lock
                                    db.set(&tx, oid, "weight", Value::Int(w + 1))
                                };
                                match step() {
                                    Ok(()) => {
                                        db.commit(tx).unwrap();
                                        break;
                                    }
                                    Err(_) => {
                                        aborts.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                        db.rollback(tx).unwrap();
                                    }
                                }
                            }
                        }
                    });
                }
            })
            .unwrap();
        });
        let total = (THREADS * OPS) as f64;
        table.row(vec![
            format!("{strategy:?}"),
            THREADS.to_string(),
            fmt_dur(d),
            format!("{:.0}", total / d.as_secs_f64()),
            aborts.load(std::sync::atomic::Ordering::Relaxed).to_string(),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E9 — versions and composite locks (§3.3, §5.5, [KIM89c])
// ---------------------------------------------------------------------------

fn e9() {
    const UPDATES: usize = 2_000;
    let db = Database::open_in_memory();
    db.create_class(
        "Doc",
        &[],
        vec![AttrSpec::new("rev", Domain::Primitive(PrimitiveType::Int))],
    )
    .unwrap();
    let tx = db.begin();
    let plain = db.create_object(&tx, "Doc", vec![("rev", Value::Int(0))]).unwrap();
    let (_generic, version) =
        db.create_versioned(&tx, "Doc", vec![("rev", Value::Int(0))]).unwrap();
    let mut table = Table::new(&["operation", "per-op"]);
    let plain_upd = time_per(UPDATES, || db.set(&tx, plain, "rev", Value::Int(1)).unwrap());
    let vers_upd = time_per(UPDATES, || db.set(&tx, version, "rev", Value::Int(1)).unwrap());
    table.row(vec!["update plain object".into(), fmt_dur(plain_upd)]);
    table.row(vec!["update transient version".into(), fmt_dur(vers_upd)]);
    let create = time_per(200, || db.create_object(&tx, "Doc", vec![]).unwrap());
    let derive = time_per(200, || db.derive_version(&tx, version).unwrap());
    table.row(vec!["create plain object".into(), fmt_dur(create)]);
    table.row(vec!["derive version".into(), fmt_dur(derive)]);
    db.commit(tx).unwrap();

    // Composite locking: lock a 64-part composite in one protocol step
    // versus touching each part under its own transaction.
    let db2 = Database::open_in_memory();
    let roots = assemblies(&db2, 1, 64, false);
    let root = roots[0];
    let members = db2.composite_members(root);
    let one_step = time_per(50, || {
        let tx = db2.begin();
        db2.lock_composite(&tx, root).unwrap();
        for &m in &members {
            std::hint::black_box(db2.get(&tx, m, if m == root { "title" } else { "area" }).unwrap());
        }
        db2.commit(tx).unwrap();
    });
    let per_op = time_per(50, || {
        for &m in &members {
            let tx = db2.begin();
            std::hint::black_box(db2.get(&tx, m, if m == root { "title" } else { "area" }).unwrap());
            db2.commit(tx).unwrap();
        }
    });
    table.row(vec!["read 65-object composite, composite lock".into(), fmt_dur(one_step)]);
    table.row(vec!["read 65-object composite, txn per object".into(), fmt_dur(per_op)]);
    table.print();
}

// ---------------------------------------------------------------------------
// E10 — clustering (§4.2)
// ---------------------------------------------------------------------------

fn e10() {
    const ASSEMBLIES: usize = 128;
    const PARTS: usize = 12;
    let mut table = Table::new(&[
        "placement",
        "page misses / composite",
        "traversal time / composite",
    ]);
    for clustering in [true, false] {
        let config = DbConfig {
            clustering,
            buffer_pages: 16,  // small pool: locality matters
            cache_objects: 64, // object cache must not hide the pages
            ..DbConfig::default()
        };
        let db = Database::with_config(config);
        // Interleaved creation scatters parts unless hints pull them in.
        let roots = assemblies(&db, ASSEMBLIES, PARTS, true);
        // Visit composites in a shuffled order: real CAx access is
        // "open one design", not a sequential sweep that would let
        // scattered layouts ride on accidental page adjacency.
        let mut order: Vec<usize> = (0..roots.len()).collect();
        {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            order.shuffle(&mut rng);
        }
        db.cool_caches().unwrap();
        db.reset_metrics();
        let tx = db.begin();
        let (d, ()) = time(|| {
            for &i in &order {
                for part in db.parts_of(roots[i]) {
                    std::hint::black_box(db.get(&tx, part, "area").unwrap());
                }
            }
        });
        db.commit(tx).unwrap();
        let misses = db.stats().pool.misses as f64 / ASSEMBLIES as f64;
        table.row(vec![
            if clustering { "clustered with parent (hints)" } else { "creation order (scattered)" }
                .into(),
            format!("{misses:.1}"),
            fmt_dur(d / ASSEMBLIES as u32),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E11 — authorization and views (§5.4, [RABI90])
// ---------------------------------------------------------------------------

fn e11() {
    const N: usize = 5_000;
    const READS: usize = 50_000;
    let mut table = Table::new(&["configuration", "per-read", "overhead"]);
    let mut baseline = Duration::ZERO;
    for authz in [false, true] {
        let config = DbConfig { authz_enabled: authz, ..DbConfig::default() };
        let f = fleet(N, 2, config);
        let db = &f.db;
        let vehicle = db.with_catalog(|c| c.class_id("Vehicle")).unwrap();
        let sub = db.with_catalog(|c| c.subtree(vehicle).unwrap().as_ref().clone());
        for class in sub {
            db.grant("reader", AuthAction::Read, AuthTarget::Class(class));
        }
        let tx = if authz { db.begin_as("reader") } else { db.begin() };
        let oid = f.vehicles[N / 2];
        let _warmup = time_per(READS / 10, || db.get(&tx, oid, "weight").unwrap());
        let per = (0..3)
            .map(|_| time_per(READS, || db.get(&tx, oid, "weight").unwrap()))
            .min()
            .unwrap();
        db.commit(tx).unwrap();
        if !authz {
            baseline = per;
        }
        table.row(vec![
            if authz { "authorization on (role closure + implicit grants)" } else { "authorization off" }
                .into(),
            fmt_dur(per),
            if authz {
                format!("+{:.0}%", 100.0 * (per.as_nanos() as f64 / baseline.as_nanos().max(1) as f64 - 1.0))
            } else {
                "—".into()
            },
        ]);
    }
    table.print();

    // Content-based authorization through a view.
    let config = DbConfig { authz_enabled: true, ..DbConfig::default() };
    let f = fleet(N, 2, config);
    let db = &f.db;
    db.define_view("Heavy", &format!("select v from Vehicle* v where v.weight >= {}", N / 2))
        .unwrap();
    db.grant("guest", AuthAction::Read, AuthTarget::View("Heavy".into()));
    let tx = db.begin_as("guest");
    let denied = db.query(&tx, "select count(*) from Vehicle* v").is_err();
    let through_view = db.query(&tx, "select count(*) from Heavy v").unwrap().rows[0][0].clone();
    println!(
        "guest direct class access denied: {denied}; rows visible through view: {through_view} of {N}"
    );
    db.commit(tx).unwrap();
}

// ---------------------------------------------------------------------------
// E12 — deductive rules (§5.4)
// ---------------------------------------------------------------------------

fn e12() {
    const NODES: usize = 100;
    let db = Database::open_in_memory();
    db.create_class(
        "Node",
        &[],
        vec![AttrSpec::new("tag", Domain::Primitive(PrimitiveType::Int))],
    )
    .unwrap();
    let node = db.with_catalog(|c| c.class_id("Node")).unwrap();
    db.evolve(
        SchemaChange::AddAttribute {
            class: node,
            spec: AttrSpec::new("next", Domain::set_of_class(node)),
        },
        Migration::Lazy,
    )
    .unwrap();
    let tx = db.begin();
    let nodes: Vec<Oid> = (0..NODES)
        .map(|i| db.create_object(&tx, "Node", vec![("tag", Value::Int(i as i64))]).unwrap())
        .collect();
    // A long chain with a back edge (cycle) and some chords.
    for i in 0..NODES - 1 {
        let mut outs = vec![Value::Ref(nodes[i + 1])];
        if i % 10 == 0 && i + 5 < NODES {
            outs.push(Value::Ref(nodes[i + 5]));
        }
        db.set(&tx, nodes[i], "next", Value::set(outs)).unwrap();
    }
    db.set(&tx, nodes[NODES - 1], "next", Value::set(vec![Value::Ref(nodes[NODES / 2])]))
        .unwrap();
    db.commit(tx).unwrap();

    db.add_rule(Rule {
        head: RuleAtom::new("reach", vec![var("X"), var("Y")]),
        body: vec![RuleAtom::new("next", vec![var("X"), var("Y")])],
    })
    .unwrap();
    db.add_rule(Rule {
        head: RuleAtom::new("reach", vec![var("X"), var("Z")]),
        body: vec![
            RuleAtom::new("reach", vec![var("X"), var("Y")]),
            RuleAtom::new("next", vec![var("Y"), var("Z")]),
        ],
    })
    .unwrap();

    let mut table =
        Table::new(&["evaluation", "tuples", "iterations", "substitutions", "time"]);
    for seminaive in [true, false] {
        let (d, result) = time(|| db.infer("reach", seminaive).unwrap());
        table.row(vec![
            if seminaive { "semi-naive" } else { "naive" }.into(),
            result.tuples.len().to_string(),
            result.iterations.to_string(),
            result.substitutions.to_string(),
            fmt_dur(d),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E13 — recovery (§3.1 requirement 2)
// ---------------------------------------------------------------------------

fn e13() {
    const TXNS: usize = 3_000;
    let mut table = Table::new(&[
        "scenario",
        "stable log bytes",
        "recovery time",
        "objects after recovery",
    ]);
    for checkpoint in [false, true] {
        let f = default_fleet(1_000, 2);
        let db = &f.db;
        if checkpoint {
            db.checkpoint().unwrap();
        }
        for i in 0..TXNS {
            let tx = db.begin();
            let oid = f.vehicles[i % f.vehicles.len()];
            // A realistically sized update (before + after images logged).
            db.set(&tx, oid, "name", Value::Str(format!("renamed-{i:0>120}"))).unwrap();
            db.commit(tx).unwrap();
            if checkpoint && i % 500 == 499 {
                db.checkpoint().unwrap();
            }
        }
        // One in-flight loser at crash time.
        let tx = db.begin();
        db.create_object(&tx, &f.leaf_classes[0], vec![("weight", Value::Int(-1))]).unwrap();
        db.engine().wal().flush().unwrap();
        std::mem::forget(tx);
        let log_bytes = db.engine().wal().stable_len();
        let (d, ()) = time(|| db.crash_and_recover().unwrap());
        let tx = db.begin();
        let n = db.query(&tx, "select count(*) from Vehicle* v").unwrap().rows[0][0].clone();
        db.commit(tx).unwrap();
        table.row(vec![
            if checkpoint { format!("{TXNS} txns, checkpoint every 500") } else { format!("{TXNS} txns, no checkpoint") },
            log_bytes.to_string(),
            fmt_dur(d),
            n.to_string(),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// E14 — multidatabase access (§5.2)
// ---------------------------------------------------------------------------

fn e14() {
    const N: usize = 5_000;
    // Native class.
    let f = default_fleet(N, 1);
    let db = &f.db;
    // Foreign twin of the same data.
    let rel = std::sync::Arc::new(fleet_relational(N));
    struct Adapter(std::sync::Arc<relbase::RelDb>);
    impl orion_core::ForeignAdapter for Adapter {
        fn name(&self) -> &str {
            "rel"
        }
        fn classes(&self) -> Vec<orion_core::ForeignClass> {
            vec![orion_core::ForeignClass {
                name: "RelVehicle".into(),
                attrs: vec![
                    ("id".into(), PrimitiveType::Int),
                    ("name".into(), PrimitiveType::Str),
                    ("weight".into(), PrimitiveType::Int),
                    ("company_id".into(), PrimitiveType::Int),
                ],
            }]
        }
        fn scan(&self, _class: &str) -> orion_types::DbResult<Vec<orion_core::ForeignObject>> {
            Ok(self
                .0
                .scan("vehicle")?
                .into_iter()
                .map(|(rowid, values)| orion_core::ForeignObject {
                    key: rowid,
                    attrs: vec![
                        ("id".into(), values[0].clone()),
                        ("name".into(), values[1].clone()),
                        ("weight".into(), values[2].clone()),
                        ("company_id".into(), values[3].clone()),
                    ],
                })
                .collect())
        }
    }
    db.attach_foreign(Box::new(Adapter(rel))).unwrap();

    let mut table = Table::new(&["extent", "query time", "rows"]);
    let tx = db.begin();
    for (label, q) in [
        ("native objects", "select count(*) from Vehicle* v where v.weight < 500"),
        ("federated (relbase via adapter)", "select count(*) from RelVehicle v where v.weight < 500"),
    ] {
        let (d, r) = time(|| db.query(&tx, q).unwrap());
        table.row(vec![label.into(), fmt_dur(d), r.rows[0][0].to_string()]);
    }
    db.commit(tx).unwrap();
    table.print();
}
