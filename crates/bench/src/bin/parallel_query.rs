//! Parallel-query benchmark: measures the two claims behind the
//! read-concurrent runtime work and records them in
//! `BENCH_parallel_query.json` at the workspace root.
//!
//! 1. *Intra-query parallelism*: a hierarchy scan with a residual
//!    predicate over >10k objects, executed with 1 vs 4 worker threads
//!    against the same plan and database.
//! 2. *Inter-query concurrency*: aggregate throughput of 4 reader
//!    threads on the shared (RwLock) runtime vs the same workload with
//!    every execution serialized behind one global mutex — an emulation
//!    of the pre-change `Mutex<Runtime>` build, where concurrent
//!    `query()` calls could not overlap at all.
//! 3. *Mixed read/write scaling*: a fixed budget of write transactions
//!    split across 1, 2, then 4 writer threads on *disjoint classes*,
//!    running concurrently with reader threads — the decomposed-runtime
//!    claim that disjoint writers scale instead of serializing behind
//!    one big lock.
//! 4. *MVCC snapshot reads*: reader throughput while 1, 2, then 4
//!    writers churn continuously (snapshot readers take no 2PL locks,
//!    so added writers should not collapse reader throughput on a
//!    multi-core host), and a pure-read workload's lock accounting
//!    (`lock_acquisitions` ≈ 0, resolution visible in `orion_mvcc_*`).
//! 5. *Group commit*: a fixed budget of commits split across 1, 8, then
//!    64 concurrent committers with a group-commit window — one flush
//!    leader's fsync should make many transactions durable, driving
//!    flushes-per-commit well below 1 (CI gates < 0.5 at 8 committers).

use orion_bench::fleet;
use orion_core::{AttrSpec, Database, DbConfig, Domain, Oid, PrimitiveType, SourceView, Value};
use orion_query::{execute_with, ExecMetrics, ExecOptions};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const N_OBJECTS: usize = 12_000;
const QUERY: &str = "select v from Vehicle* v \
     where v.weight > 2000 and v.manufacturer.location = \"Detroit\"";
const READERS: usize = 4;
const QUERIES_PER_READER: usize = 12;

fn best_of(rounds: usize, mut f: impl FnMut() -> usize) -> (Duration, usize) {
    let mut best = Duration::MAX;
    let mut len = 0;
    for _ in 0..rounds {
        let start = Instant::now();
        len = f();
        best = best.min(start.elapsed());
    }
    (best, len)
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn main() {
    let fixture = fleet(N_OBJECTS, 4, DbConfig { query_threads: 1, ..DbConfig::default() });
    let db = &fixture.db;
    let tx = db.begin();
    let planned = db.prepare_query(&tx, QUERY).expect("plan");

    // --- 1. Serial vs 4-thread execution of one query -----------------
    let run_with = |opts: &ExecOptions| {
        db.with_catalog(|cat| {
            execute_with(cat, &SourceView::new(db), &planned, opts).expect("execute").len()
        })
    };
    let run = |threads: usize| run_with(&ExecOptions::with_threads(threads));
    let (_, _) = best_of(2, || run(1)); // warm the buffer pool
    let (serial, len_serial) = best_of(5, || run(1));
    let (par4, len_par4) = best_of(5, || run(4));
    assert_eq!(len_serial, len_par4, "parallel result diverged");
    let speedup = serial.as_secs_f64() / par4.as_secs_f64();
    println!(
        "single query over {N_OBJECTS} objects: serial {serial:?}, 4 threads {par4:?} \
         ({speedup:.2}x, {len_serial} rows)"
    );
    println!("plan: {}", planned.report());

    // --- 1b. Instrumentation overhead: metrics sink off vs on ---------
    // Interleaved repeats: the off and on arms alternate within one
    // loop, so cache/frequency drift hits both equally; the medians
    // (not minima of separate batches) keep one lucky outlier from
    // producing a nonsensical negative overhead.
    let exec_metrics = Arc::new(ExecMetrics::default());
    let opts_off = ExecOptions::with_threads(1);
    let opts_on = ExecOptions { threads: 1, metrics: Some(Arc::clone(&exec_metrics)) };
    const INSTR_REPEATS: usize = 9;
    let mut off_samples = Vec::with_capacity(INSTR_REPEATS);
    let mut on_samples = Vec::with_capacity(INSTR_REPEATS);
    run_with(&opts_on); // warm both code paths
    for _ in 0..INSTR_REPEATS {
        let start = Instant::now();
        run_with(&opts_off);
        off_samples.push(start.elapsed());
        let start = Instant::now();
        run_with(&opts_on);
        on_samples.push(start.elapsed());
    }
    let metrics_off = median(off_samples);
    let metrics_on = median(on_samples);
    let overhead_pct = (metrics_on.as_secs_f64() / metrics_off.as_secs_f64() - 1.0) * 100.0;
    println!(
        "instrumentation ({INSTR_REPEATS} interleaved repeats, medians): \
         metrics off {metrics_off:?}, on {metrics_on:?} ({overhead_pct:+.2}% overhead)"
    );

    // --- 2. 4 readers: shared runtime vs global-mutex emulation -------
    let global = Mutex::new(());
    let fleet_time = |serialize: bool| {
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..READERS {
                s.spawn(|| {
                    for _ in 0..QUERIES_PER_READER {
                        let _guard = serialize
                            .then(|| global.lock().unwrap_or_else(|e| e.into_inner()));
                        let n = run(1);
                        assert_eq!(n, len_serial);
                    }
                });
            }
        });
        start.elapsed()
    };
    fleet_time(false); // warm-up
    let shared = fleet_time(false);
    let mutexed = fleet_time(true);
    let agg_speedup = mutexed.as_secs_f64() / shared.as_secs_f64();
    let total = READERS * QUERIES_PER_READER;
    println!(
        "{READERS} readers x {QUERIES_PER_READER} queries: shared runtime {shared:?} \
         ({:.1}/s), global mutex {mutexed:?} ({:.1}/s) — {agg_speedup:.2}x aggregate",
        total as f64 / shared.as_secs_f64(),
        total as f64 / mutexed.as_secs_f64(),
    );
    // --- 3. Mixed read/write scaling on disjoint classes --------------
    // A fixed budget of write transactions is split across 1, 2, then 4
    // writer threads, each owning its own class (disjoint 2PL and
    // component-lock footprints), while reader threads run the scan
    // query concurrently. Under the old big-lock runtime every write
    // serialized; with decomposed components the same budget should
    // shrink in wall-clock as writers are added.
    const MIX_WRITERS: [usize; 3] = [1, 2, 4];
    const WRITE_TXNS_TOTAL: usize = 240;
    const MIX_READERS: usize = 2;
    const MIX_QUERIES_PER_READER: usize = 6;
    let ledger_seeds: Vec<Oid> = (0..*MIX_WRITERS.last().unwrap())
        .map(|i| {
            let class = format!("Ledger{i}");
            db.create_class(
                &class,
                &[],
                vec![AttrSpec::new("n", Domain::Primitive(PrimitiveType::Int))],
            )
            .expect("ledger class");
            let seed_tx = db.begin();
            let oid = db
                .create_object(&seed_tx, &class, vec![("n", Value::Int(0))])
                .expect("ledger seed");
            db.commit(seed_tx).expect("commit seed");
            oid
        })
        .collect();
    let mix_time = |writers: usize| {
        let start = Instant::now();
        std::thread::scope(|s| {
            for (t, &seed) in ledger_seeds.iter().enumerate().take(writers) {
                let class = format!("Ledger{t}");
                s.spawn(move || {
                    for i in 0..WRITE_TXNS_TOTAL / writers {
                        let wtx = db.begin();
                        let v = db.get(&wtx, seed, "n").expect("get").as_int().unwrap();
                        db.set(&wtx, seed, "n", Value::Int(v + 1)).expect("set");
                        db.create_object(&wtx, &class, vec![("n", Value::Int(i as i64))])
                            .expect("create");
                        db.commit(wtx).expect("commit write txn");
                    }
                });
            }
            for _ in 0..MIX_READERS {
                s.spawn(|| {
                    for _ in 0..MIX_QUERIES_PER_READER {
                        let n = run(1);
                        assert_eq!(n, len_serial, "writer traffic must not disturb the query");
                    }
                });
            }
        });
        start.elapsed()
    };
    mix_time(1); // warm-up
    let mix: Vec<(usize, Duration)> = MIX_WRITERS.iter().map(|&w| (w, mix_time(w))).collect();
    for (w, d) in &mix {
        println!(
            "mixed load, {w} writer(s) on disjoint classes + {MIX_READERS} readers: \
             {WRITE_TXNS_TOTAL} write txns in {d:?} ({:.1} writes/s)",
            WRITE_TXNS_TOTAL as f64 / d.as_secs_f64()
        );
    }

    // --- 4. MVCC snapshot reads -----------------------------------------
    // 4a. Reader throughput while writers churn. Snapshot readers take
    // no 2PL locks, so on a host with enough cores their throughput
    // should stay flat as writers are added; writers run flat-out until
    // the readers finish, so the reader-side work is constant per run.
    const RT_QUERIES_PER_READER: usize = 8;
    let facade_query = || {
        let rtx = db.begin();
        let n = db.query(&rtx, QUERY).expect("facade query").len();
        db.commit(rtx).expect("commit read txn");
        n
    };
    let reader_throughput = |writers: usize| {
        let stop = AtomicBool::new(false);
        let writes = AtomicU64::new(0);
        let mut reader_qps = 0.0;
        let mut writes_per_s = 0.0;
        std::thread::scope(|s| {
            for (t, &seed) in ledger_seeds.iter().enumerate().take(writers) {
                let class = format!("Ledger{t}");
                let (stop, writes) = (&stop, &writes);
                s.spawn(move || {
                    let mut i = 0i64;
                    while !stop.load(Ordering::Relaxed) {
                        let wtx = db.begin();
                        let v = db.get(&wtx, seed, "n").expect("get").as_int().unwrap();
                        db.set(&wtx, seed, "n", Value::Int(v + 1)).expect("set");
                        db.create_object(&wtx, &class, vec![("n", Value::Int(i))])
                            .expect("create");
                        db.commit(wtx).expect("commit write txn");
                        writes.fetch_add(1, Ordering::Relaxed);
                        i += 1;
                    }
                });
            }
            let start = Instant::now();
            let readers: Vec<_> = (0..MIX_READERS)
                .map(|_| {
                    s.spawn(|| {
                        for _ in 0..RT_QUERIES_PER_READER {
                            let n = facade_query();
                            assert_eq!(n, len_serial, "snapshot query saw writer churn");
                        }
                    })
                })
                .collect();
            for h in readers {
                h.join().unwrap();
            }
            let elapsed = start.elapsed().as_secs_f64();
            stop.store(true, Ordering::Relaxed);
            reader_qps = (MIX_READERS * RT_QUERIES_PER_READER) as f64 / elapsed;
            writes_per_s = writes.load(Ordering::Relaxed) as f64 / elapsed;
        });
        (reader_qps, writes_per_s)
    };
    reader_throughput(1); // warm-up
    let throughput: Vec<(usize, f64, f64)> = MIX_WRITERS
        .iter()
        .map(|&w| {
            let (qps, wps) = reader_throughput(w);
            (w, qps, wps)
        })
        .collect();
    for (w, qps, wps) in &throughput {
        println!(
            "snapshot readers vs {w} writer(s): {MIX_READERS} readers at {qps:.1} queries/s \
             while writers commit {wps:.1} txns/s"
        );
    }
    let base_qps = throughput[0].1;
    let last_qps = throughput.last().unwrap().1;
    let reader_degradation_pct = (base_qps - last_qps) / base_qps * 100.0;
    // With fewer cores than threads, readers lose wall-clock to writer
    // CPU time no matter how lock-free they are — the flatness gate is
    // only meaningful when every thread can have its own core.
    let reader_gate_enforced = cpus() >= MIX_READERS + MIX_WRITERS.last().unwrap();
    println!(
        "reader throughput degradation 1 -> {} writers: {reader_degradation_pct:+.1}% \
         (flatness gate {})",
        MIX_WRITERS.last().unwrap(),
        if reader_gate_enforced { "enforced" } else { "skipped: core-bound" },
    );

    // A few facade-path queries so the database's own executor metrics
    // are populated, then snapshot every layer's counters.
    for _ in 0..3 {
        db.query(&tx, QUERY).expect("query");
    }
    let stats = db.stats();
    db.commit(tx).expect("commit");

    // 4b. Pure-read lock accounting: from a clean slate, a read-only
    // workload must resolve entirely through snapshots — ~0 2PL lock
    // acquisitions, every read visible in the orion_mvcc_* counters.
    db.reset_metrics();
    let pure_read_queries = MIX_READERS * RT_QUERIES_PER_READER;
    let pure_start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..MIX_READERS {
            s.spawn(|| {
                for _ in 0..RT_QUERIES_PER_READER {
                    let n = facade_query();
                    assert_eq!(n, len_serial);
                }
            });
        }
    });
    let pure_read_qps = pure_read_queries as f64 / pure_start.elapsed().as_secs_f64();
    let pure = db.stats();
    println!(
        "pure-read workload ({pure_read_queries} queries): {} lock acquisitions \
         ({} S-mode), {} snapshots, {} snapshot reads, {pure_read_qps:.1} queries/s",
        pure.locks.acquisitions, pure.locks.s_acquisitions, pure.mvcc.snapshots,
        pure.mvcc.snapshot_reads,
    );

    // --- 5. Group commit: flushes per commit vs committer count --------
    // A fixed budget of tiny write transactions, split across 1, 8,
    // then 64 concurrent committers. Every commit forces the log, but
    // with a group-commit window the flush leader's single fsync covers
    // every committer parked on the same ticket; flushes-per-commit is
    // the measure of amortization (1.0 = no sharing).
    const COMMIT_FLEETS: [usize; 3] = [1, 8, 64];
    const COMMITS_TOTAL: usize = 192;
    const GROUP_WINDOW_US: u64 = 500;
    let commit_rows: Vec<String> = COMMIT_FLEETS
        .iter()
        .map(|&committers| {
            let cdb = Database::with_config(DbConfig {
                group_commit_window: Duration::from_micros(GROUP_WINDOW_US),
                ..DbConfig::default()
            });
            cdb.create_class(
                "Entry",
                &[],
                vec![AttrSpec::new("n", Domain::Primitive(PrimitiveType::Int))],
            )
            .expect("entry class");
            cdb.reset_metrics();
            let start = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..committers {
                    let cdb = &cdb;
                    s.spawn(move || {
                        for i in 0..COMMITS_TOTAL / committers {
                            let wtx = cdb.begin();
                            cdb.create_object(&wtx, "Entry", vec![("n", Value::Int(i as i64))])
                                .expect("create");
                            cdb.commit(wtx).expect("commit");
                        }
                    });
                }
            });
            let elapsed = start.elapsed();
            let wal = cdb.stats().wal;
            let commits = (COMMITS_TOTAL / committers * committers) as u64;
            let per_commit = wal.fsyncs as f64 / commits as f64;
            println!(
                "group commit, {committers} committer(s): {commits} commits in {elapsed:?} \
                 ({:.1}/s), {} fsyncs ({per_commit:.3} flushes/commit, {} group flushes)",
                commits as f64 / elapsed.as_secs_f64(),
                wal.fsyncs,
                wal.group_commit_batch_size.count,
            );
            format!(
                "{{ \"committers\": {committers}, \"commits\": {commits}, \"ms\": {:.3}, \
                 \"commits_per_s\": {:.1}, \"fsyncs\": {}, \
                 \"flushes_per_commit\": {per_commit:.4} }}",
                elapsed.as_secs_f64() * 1e3,
                commits as f64 / elapsed.as_secs_f64(),
                wal.fsyncs,
            )
        })
        .collect();
    let commit_throughput = commit_rows.join(",\n      ");

    let cpus = cpus();
    // Threads cannot beat serial wall-clock on a host with fewer cores
    // than workers; say so in the record instead of leaving a mystery.
    let note = if cpus < READERS {
        format!(
            ",\n  \"note\": \"host exposes {cpus} CPU(s); speedups are \
             core-bound and need >= {READERS} cores to manifest\""
        )
    } else {
        String::new()
    };
    let writer_scaling = mix
        .iter()
        .map(|(w, d)| {
            format!(
                "{{ \"writers\": {w}, \"ms\": {:.3}, \"write_txns_per_s\": {:.1} }}",
                d.as_secs_f64() * 1e3,
                WRITE_TXNS_TOTAL as f64 / d.as_secs_f64()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n      ");
    let reader_vs_writers = throughput
        .iter()
        .map(|(w, qps, wps)| {
            format!("{{ \"writers\": {w}, \"reader_qps\": {qps:.1}, \"writes_per_s\": {wps:.1} }}")
        })
        .collect::<Vec<_>>()
        .join(",\n      ");
    let json = format!(
        "{{\n  \"bench\": \"parallel_query\",\n  \"objects\": {N_OBJECTS},\n  \
         \"query\": \"hierarchy scan + residual (weight, manufacturer.location)\",\n  \
         \"available_parallelism\": {cpus}{note},\n  \
         \"single_query\": {{\n    \"serial_ms\": {:.3},\n    \"threads4_ms\": {:.3},\n    \
         \"speedup\": {:.3},\n    \"rows\": {len_serial}\n  }},\n  \
         \"concurrent_readers\": {{\n    \"readers\": {READERS},\n    \
         \"queries_per_reader\": {QUERIES_PER_READER},\n    \
         \"shared_runtime_ms\": {:.3},\n    \"global_mutex_ms\": {:.3},\n    \
         \"aggregate_speedup\": {:.3}\n  }},\n  \
         \"mixed_read_write\": {{\n    \"write_txns_total\": {WRITE_TXNS_TOTAL},\n    \
         \"readers\": {MIX_READERS},\n    \
         \"queries_per_reader\": {MIX_QUERIES_PER_READER},\n    \
         \"disjoint_class_writer_scaling\": [\n      {writer_scaling}\n    ],\n    \
         \"reader_throughput_vs_writers\": [\n      {reader_vs_writers}\n    ],\n    \
         \"reader_degradation_pct\": {reader_degradation_pct:.1},\n    \
         \"reader_gate_enforced\": {reader_gate_enforced},\n    \
         \"pure_read_queries\": {pure_read_queries},\n    \
         \"pure_read_lock_acquisitions\": {},\n    \
         \"pure_read_s_lock_acquisitions\": {},\n    \
         \"pure_read_snapshots\": {},\n    \
         \"pure_read_snapshot_reads\": {},\n    \
         \"pure_read_qps\": {pure_read_qps:.1}\n  }},\n  \
         \"commit_throughput\": {{\n    \"group_commit_window_us\": {GROUP_WINDOW_US},\n    \
         \"runs\": [\n      {commit_throughput}\n    ]\n  }},\n  \
         \"instrumentation\": {{\n    \"repeats\": {INSTR_REPEATS},\n    \
         \"interleaved\": true,\n    \"metrics_off_median_ms\": {:.3},\n    \
         \"metrics_on_median_ms\": {:.3},\n    \"overhead_pct\": {:.3}\n  }},\n  \
         \"stats\": {{\n    \"pool_hits\": {},\n    \"pool_misses\": {},\n    \
         \"wal_appends\": {},\n    \"wal_flushes\": {},\n    \
         \"lock_acquisitions\": {},\n    \"s_lock_acquisitions\": {},\n    \
         \"x_lock_acquisitions\": {},\n    \"mvcc_snapshots\": {},\n    \
         \"mvcc_snapshot_reads\": {},\n    \"mvcc_versions_published\": {},\n    \
         \"mvcc_versions_pruned\": {},\n    \"exec_queries\": {},\n    \
         \"exec_rows_scanned\": {},\n    \"object_fetches\": {}\n  }}\n}}\n",
        serial.as_secs_f64() * 1e3,
        par4.as_secs_f64() * 1e3,
        speedup,
        shared.as_secs_f64() * 1e3,
        mutexed.as_secs_f64() * 1e3,
        agg_speedup,
        pure.locks.acquisitions,
        pure.locks.s_acquisitions,
        pure.mvcc.snapshots,
        pure.mvcc.snapshot_reads,
        metrics_off.as_secs_f64() * 1e3,
        metrics_on.as_secs_f64() * 1e3,
        overhead_pct,
        stats.pool.hits,
        stats.pool.misses,
        stats.wal.appends,
        stats.wal.flushes,
        stats.locks.acquisitions,
        stats.locks.s_acquisitions,
        stats.locks.x_acquisitions,
        stats.mvcc.snapshots,
        stats.mvcc.snapshot_reads,
        stats.mvcc.versions_published,
        stats.mvcc.versions_pruned,
        stats.exec.queries,
        stats.exec.rows_scanned,
        stats.fetches,
    );
    std::fs::write("BENCH_parallel_query.json", &json).expect("write BENCH_parallel_query.json");
    println!("wrote BENCH_parallel_query.json");
}
