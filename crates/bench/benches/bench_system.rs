//! Criterion benches for the system-level experiments: E6 (schema
//! evolution), E8 (lock granularity), E9 (versions/composites),
//! E10 (clustering), E11 (authorization), E12 (rules), E13 (recovery).
//! The `experiments` binary prints richer tables; these track the same
//! quantities with Criterion statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orion_bench::{assemblies, fleet};
use orion_core::{
    var, AttrSpec, AuthAction, AuthTarget, Database, DbConfig, Domain, LockingStrategy,
    Migration, Oid, PrimitiveType, Rule, RuleAtom, SchemaChange, Value,
};
use std::time::Duration;

fn quick(group: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>) {
    group.measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(400));
    group.sample_size(10);
}

fn bench_e6_evolution(c: &mut Criterion) {
    const N: usize = 5_000;
    let mut group = c.benchmark_group("e6_schema_evolution");
    quick(&mut group);
    for policy in [Migration::Lazy, Migration::Eager] {
        group.bench_function(BenchmarkId::new("add_attribute", format!("{policy:?}")), |b| {
            b.iter_batched(
                || fleet(N, 2, DbConfig::default()),
                |f| {
                    let vehicle = f.db.with_catalog(|c| c.class_id("Vehicle")).unwrap();
                    f.db.evolve(
                        SchemaChange::AddAttribute {
                            class: vehicle,
                            spec: AttrSpec::new("color", Domain::Primitive(PrimitiveType::Str)),
                        },
                        policy,
                    )
                    .unwrap();
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_e8_locking(c: &mut Criterion) {
    const THREADS: usize = 4;
    const OPS: usize = 100;
    let mut group = c.benchmark_group("e8_lock_granularity");
    quick(&mut group);
    for strategy in [LockingStrategy::Granular, LockingStrategy::CoarseClass] {
        let config = DbConfig {
            locking: strategy,
            lock_timeout: Duration::from_secs(30),
            ..DbConfig::default()
        };
        let f = fleet(THREADS * OPS, 1, config);
        group.bench_function(BenchmarkId::new("concurrent_updates", format!("{strategy:?}")), |b| {
            b.iter(|| {
                crossbeam::scope(|scope| {
                    for t in 0..THREADS {
                        let db = &f.db;
                        let vehicles = &f.vehicles;
                        scope.spawn(move |_| {
                            for i in 0..OPS {
                                let tx = db.begin();
                                db.set(&tx, vehicles[t * OPS + i], "weight", Value::Int(i as i64))
                                    .unwrap();
                                db.commit(tx).unwrap();
                            }
                        });
                    }
                })
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_e9_versions(c: &mut Criterion) {
    let db = Database::open_in_memory();
    db.create_class(
        "Doc",
        &[],
        vec![AttrSpec::new("rev", Domain::Primitive(PrimitiveType::Int))],
    )
    .unwrap();
    let tx = db.begin();
    let plain = db.create_object(&tx, "Doc", vec![("rev", Value::Int(0))]).unwrap();
    let (_generic, version) = db.create_versioned(&tx, "Doc", vec![("rev", Value::Int(0))]).unwrap();
    let mut group = c.benchmark_group("e9_versions");
    quick(&mut group);
    group.bench_function("update_plain", |b| {
        b.iter(|| db.set(&tx, plain, "rev", Value::Int(1)).unwrap())
    });
    group.bench_function("update_transient_version", |b| {
        b.iter(|| db.set(&tx, version, "rev", Value::Int(1)).unwrap())
    });
    group.bench_function("derive_version", |b| {
        b.iter(|| db.derive_version(&tx, version).unwrap())
    });
    group.finish();
    db.commit(tx).unwrap();
}

fn bench_e10_clustering(c: &mut Criterion) {
    const ASSEMBLIES: usize = 32;
    const PARTS: usize = 12;
    let mut group = c.benchmark_group("e10_clustering");
    quick(&mut group);
    for clustering in [true, false] {
        let config = DbConfig {
            clustering,
            buffer_pages: 16,
            cache_objects: 64,
            ..DbConfig::default()
        };
        let db = Database::with_config(config);
        let roots = assemblies(&db, ASSEMBLIES, PARTS, true);
        let label = if clustering { "clustered" } else { "scattered" };
        group.bench_function(BenchmarkId::new("cold_composite_read", label), |b| {
            b.iter(|| {
                db.cool_caches().unwrap();
                let tx = db.begin();
                for &root in &roots {
                    for part in db.parts_of(root) {
                        std::hint::black_box(db.get(&tx, part, "area").unwrap());
                    }
                }
                db.commit(tx).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_e11_authz(c: &mut Criterion) {
    const N: usize = 2_000;
    let mut group = c.benchmark_group("e11_authorization");
    quick(&mut group);
    for authz in [false, true] {
        let config = DbConfig { authz_enabled: authz, ..DbConfig::default() };
        let f = fleet(N, 2, config);
        let db = &f.db;
        let vehicle = db.with_catalog(|c| c.class_id("Vehicle")).unwrap();
        let classes = db.with_catalog(|c| c.subtree(vehicle).unwrap().as_ref().clone());
        for class in classes {
            db.grant("reader", AuthAction::Read, AuthTarget::Class(class));
        }
        let tx = if authz { db.begin_as("reader") } else { db.begin() };
        let oid = f.vehicles[N / 2];
        let label = if authz { "on" } else { "off" };
        group.bench_function(BenchmarkId::new("read", label), |b| {
            b.iter(|| db.get(&tx, oid, "weight").unwrap())
        });
        db.commit(tx).unwrap();
    }
    group.finish();
}

fn bench_e12_rules(c: &mut Criterion) {
    const NODES: usize = 40;
    let db = Database::open_in_memory();
    db.create_class("Node", &[], vec![]).unwrap();
    let node = db.with_catalog(|c| c.class_id("Node")).unwrap();
    db.evolve(
        SchemaChange::AddAttribute {
            class: node,
            spec: AttrSpec::new("next", Domain::set_of_class(node)),
        },
        Migration::Lazy,
    )
    .unwrap();
    let tx = db.begin();
    let nodes: Vec<Oid> =
        (0..NODES).map(|_| db.create_object(&tx, "Node", vec![]).unwrap()).collect();
    for i in 0..NODES - 1 {
        db.set(&tx, nodes[i], "next", Value::set(vec![Value::Ref(nodes[i + 1])])).unwrap();
    }
    db.set(&tx, nodes[NODES - 1], "next", Value::set(vec![Value::Ref(nodes[0])])).unwrap();
    db.commit(tx).unwrap();
    db.add_rule(Rule {
        head: RuleAtom::new("reach", vec![var("X"), var("Y")]),
        body: vec![RuleAtom::new("next", vec![var("X"), var("Y")])],
    })
    .unwrap();
    db.add_rule(Rule {
        head: RuleAtom::new("reach", vec![var("X"), var("Z")]),
        body: vec![
            RuleAtom::new("reach", vec![var("X"), var("Y")]),
            RuleAtom::new("next", vec![var("Y"), var("Z")]),
        ],
    })
    .unwrap();
    let mut group = c.benchmark_group("e12_rules");
    quick(&mut group);
    group.bench_function("seminaive", |b| b.iter(|| db.infer("reach", true).unwrap()));
    group.bench_function("naive", |b| b.iter(|| db.infer("reach", false).unwrap()));
    group.finish();
}

fn bench_e13_recovery(c: &mut Criterion) {
    const TXNS: usize = 300;
    let mut group = c.benchmark_group("e13_recovery");
    quick(&mut group);
    group.bench_function("crash_and_recover", |b| {
        b.iter_batched(
            || {
                let f = fleet(500, 2, DbConfig::default());
                for i in 0..TXNS {
                    let tx = f.db.begin();
                    let oid = f.vehicles[i % f.vehicles.len()];
                    f.db.set(&tx, oid, "weight", Value::Int(i as i64)).unwrap();
                    f.db.commit(tx).unwrap();
                }
                f
            },
            |f| f.db.crash_and_recover().unwrap(),
            criterion::BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_e6_evolution,
    bench_e8_locking,
    bench_e9_versions,
    bench_e10_clustering,
    bench_e11_authz,
    bench_e12_rules,
    bench_e13_recovery
);
criterion_main!(benches);
