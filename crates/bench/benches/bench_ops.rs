//! Criterion benches for E5 (simple database operations, \[RUBE87\]) and
//! E7 (late-binding dispatch): the per-operation costs of the kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orion_bench::{deep_hierarchy, fleet, fleet_relational};
use orion_core::{Database, DbConfig, Value};
use std::time::Duration;

fn configure(c: &mut Criterion) -> Criterion {
    let _ = c;
    Criterion::default()
}

fn bench_e5_simple_ops(c: &mut Criterion) {
    const N: usize = 10_000;
    let f = fleet(N, 4, DbConfig::default());
    let db = &f.db;
    db.create_index("byname", orion_core::IndexKind::ClassHierarchy, "Vehicle", &["name"])
        .unwrap();
    let rel = fleet_relational(N);

    let mut group = c.benchmark_group("e5_simple_ops");
    group.measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));

    let tx = db.begin();
    let prepared =
        db.prepare_query(&tx, "select v from Vehicle* v where v.name = \"vehicle42\"").unwrap();
    group.bench_function(BenchmarkId::new("name_lookup", "orion_prepared"), |b| {
        b.iter(|| db.execute_prepared(&prepared).unwrap())
    });
    group.bench_function(BenchmarkId::new("name_lookup", "orion_parsed"), |b| {
        b.iter(|| {
            db.query(&tx, "select v from Vehicle* v where v.name = \"vehicle42\"").unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("name_lookup", "relbase"), |b| {
        b.iter(|| rel.select_eq("vehicle", "name", &Value::str("vehicle42")).unwrap())
    });

    let sample = f.vehicles[N / 2];
    db.navigate(&tx, sample, &["manufacturer"]).unwrap(); // warm
    group.bench_function(BenchmarkId::new("one_hop", "orion_navigate"), |b| {
        b.iter(|| db.navigate(&tx, sample, &["manufacturer"]).unwrap())
    });
    group.bench_function(BenchmarkId::new("one_hop", "relbase_two_probes"), |b| {
        b.iter(|| {
            let v = rel.select_eq("vehicle", "id", &Value::Int((N / 2) as i64)).unwrap();
            rel.select_eq("company", "id", &v[0].1[3]).unwrap()
        })
    });

    let mut i = N as i64;
    group.bench_function(BenchmarkId::new("insert", "orion"), |b| {
        b.iter(|| {
            i += 1;
            db.create_object(
                &tx,
                &f.leaf_classes[0],
                vec![("name", Value::Str(format!("vx{i}"))), ("weight", Value::Int(i))],
            )
            .unwrap()
        })
    });
    let txn = rel.begin();
    let mut j = N as i64;
    group.bench_function(BenchmarkId::new("insert", "relbase"), |b| {
        b.iter(|| {
            j += 1;
            rel.insert(
                txn,
                "vehicle",
                vec![
                    Value::Int(j),
                    Value::Str(format!("vx{j}")),
                    Value::Int(j),
                    Value::Int(0),
                ],
            )
            .unwrap()
        })
    });
    rel.commit(txn).unwrap();
    db.commit(tx).unwrap();
    group.finish();
}

fn bench_e7_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_late_binding");
    group.measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    for depth in [1usize, 8, 16] {
        for cache in [true, false] {
            let db = Database::open_in_memory();
            let leaf = deep_hierarchy(&db, depth);
            db.with_catalog_mut(|cat| cat.set_method_cache_enabled(cache));
            let tx = db.begin();
            let obj = db.create_object(&tx, &leaf, vec![]).unwrap();
            let class = obj.class();
            let label = format!("depth{depth}_cache_{}", if cache { "on" } else { "off" });
            group.bench_function(BenchmarkId::new("resolve", label), |b| {
                db.with_catalog(|cat| b.iter(|| cat.resolve_method(class, "m").unwrap()))
            });
            db.commit(tx).unwrap();
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = configure(&mut Criterion::default());
    targets = bench_e5_simple_ops, bench_e7_dispatch
}
criterion_main!(benches);
