//! Criterion bench for experiment E3: pointer-swizzled navigation vs
//! join-per-hop relational traversal (§3.3's "order of magnitude").

use criterion::{criterion_group, criterion_main, Criterion};
use orion_bench::{chains, chains_relational};
use orion_core::{Database, DbConfig};
use orion_types::Value;

const CHAINS: usize = 100;
const DEPTH: usize = 6;

fn bench_e3_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_traversal");
    group.sample_size(20);

    // Relational baseline: index probe per hop.
    let rel = relbase::RelDb::new(256);
    let rel_heads = chains_relational(&rel, CHAINS, DEPTH);
    group.bench_function("relbase_join_per_hop", |b| {
        b.iter(|| {
            for &head in &rel_heads {
                let mut cur = Value::Int(head);
                for _ in 0..DEPTH - 1 {
                    let rows = rel.select_eq("link", "id", &cur).unwrap();
                    cur = rows[0].1[2].clone();
                }
                std::hint::black_box(cur);
            }
        })
    });

    for swizzling in [true, false] {
        let config = DbConfig {
            swizzling,
            cache_objects: CHAINS * DEPTH + 64,
            ..DbConfig::default()
        };
        let db = Database::with_config(config);
        let heads = chains(&db, CHAINS, DEPTH);
        let path: Vec<&str> = std::iter::repeat_n("next", DEPTH - 1).collect();
        let tx = db.begin();
        // Warm the cache so the measurement isolates traversal cost.
        for &h in &heads {
            db.navigate(&tx, h, &path).unwrap();
        }
        let label = if swizzling { "orion_swizzled" } else { "orion_oid_hash" };
        group.bench_function(label, |b| {
            b.iter(|| {
                for &h in &heads {
                    std::hint::black_box(db.navigate(&tx, h, &path).unwrap());
                }
            })
        });
        db.commit(tx).unwrap();
    }
    group.finish();
}

criterion_group!(benches, bench_e3_traversal);
criterion_main!(benches);
