//! Criterion benches for experiments E1 (class-hierarchy indexing) and
//! E2 (nested-attribute indexing). The `experiments` binary prints the
//! corresponding tables; these give statistically solid per-query times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orion_bench::fleet;
use orion_core::{DbConfig, IndexKind};

fn bench_e1_hierarchy_query(c: &mut Criterion) {
    const N: usize = 10_000;
    const K: usize = 8;
    let f = fleet(N, K, DbConfig::default());
    let db = &f.db;
    let lo = (N / 2) as i64;
    let hi = lo + (N / 100) as i64;
    let query =
        format!("select count(*) from Vehicle* v where v.weight >= {lo} and v.weight < {hi}");

    let mut group = c.benchmark_group("e1_hierarchy_range_query");
    group.sample_size(20);

    group.bench_function(BenchmarkId::new("access", "extent_scan"), |b| {
        b.iter(|| {
            let tx = db.begin();
            let r = db.query(&tx, &query).unwrap();
            db.commit(tx).unwrap();
            r
        })
    });

    db.create_index("ch", IndexKind::ClassHierarchy, "Vehicle", &["weight"]).unwrap();
    group.bench_function(BenchmarkId::new("access", "class_hierarchy_index"), |b| {
        b.iter(|| {
            let tx = db.begin();
            let r = db.query(&tx, &query).unwrap();
            db.commit(tx).unwrap();
            r
        })
    });
    db.drop_index("ch").unwrap();

    for class in &f.leaf_classes {
        db.create_index(&format!("sc_{class}"), IndexKind::SingleClass, class, &["weight"])
            .unwrap();
    }
    let per_class: Vec<String> = f
        .leaf_classes
        .iter()
        .map(|cl| format!("select count(*) from {cl} v where v.weight >= {lo} and v.weight < {hi}"))
        .collect();
    group.bench_function(BenchmarkId::new("access", "k_single_class_indexes"), |b| {
        b.iter(|| {
            let tx = db.begin();
            let mut total = 0i64;
            for q in &per_class {
                total += db.query(&tx, q).unwrap().rows[0][0].as_int().unwrap();
            }
            db.commit(tx).unwrap();
            total
        })
    });
    group.finish();
}

fn bench_e2_nested_predicate(c: &mut Criterion) {
    const N: usize = 10_000;
    let f = fleet(N, 4, DbConfig::default());
    let db = &f.db;
    let query = "select count(*) from Vehicle* v where v.manufacturer.location = \"Detroit\"";

    let mut group = c.benchmark_group("e2_nested_predicate");
    group.sample_size(15);
    group.bench_function("forward_traversal", |b| {
        b.iter(|| {
            let tx = db.begin();
            let r = db.query(&tx, query).unwrap();
            db.commit(tx).unwrap();
            r
        })
    });
    db.create_index("loc", IndexKind::Nested, "Vehicle", &["manufacturer", "location"]).unwrap();
    group.bench_function("nested_index", |b| {
        b.iter(|| {
            let tx = db.begin();
            let r = db.query(&tx, query).unwrap();
            db.commit(tx).unwrap();
            r
        })
    });
    group.finish();
}

criterion_group!(benches, bench_e1_hierarchy_query, bench_e2_nested_predicate);
criterion_main!(benches);
