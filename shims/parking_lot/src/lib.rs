//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace serves
//! the (small) `parking_lot` API subset orion uses from this local
//! crate, implemented over `std::sync`. Semantics match parking_lot
//! where it matters to callers: locks are not poisoning — a panic while
//! holding a guard recovers the inner state instead of propagating a
//! `PoisonError`.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutex that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Holds an `Option` so [`Condvar::wait_for`]
/// can temporarily take the underlying std guard.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside wait")
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockReadGuard(p.into_inner()))
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockWriteGuard(p.into_inner()))
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(5));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn no_poisoning() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // still usable
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
