//! Offline shim for the `criterion` crate.
//!
//! A minimal wall-clock benchmark runner exposing the API shape orion's
//! benches use (`benchmark_group`, `bench_function`, `iter`,
//! `iter_batched`, the `criterion_group!`/`criterion_main!` macros). No
//! statistics beyond mean-of-samples; results print one line per bench:
//!
//! ```text
//! bench e1_hierarchy_range_query/access/extent_scan ... 1234567 ns/iter (20 samples)
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_id}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything accepted as a bench name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Batch-size hint for `iter_batched` (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Passed to bench closures; runs and times the routine.
pub struct Bencher<'a> {
    samples: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    result: &'a mut Option<(f64, usize)>, // (ns per iter, samples)
}

impl Bencher<'_> {
    /// Time `routine` called in a loop.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up and calibration: how many iterations fit one sample?
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut calib_iters = 0u64;
        let calib_start = Instant::now();
        loop {
            black_box(routine());
            calib_iters += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.samples as f64;
        let iters = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += iters;
        }
        *self.result = Some((total_ns / total_iters as f64, self.samples));
    }

    /// Time `routine` with a fresh `setup` value per batch.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += 1;
        }
        *self.result = Some((total_ns / total_iters as f64, self.samples));
    }
}

/// Shared tuning knobs for a group of benches.
#[derive(Debug, Clone)]
struct Knobs {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

/// The benchmark manager.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    knobs: Knobs,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.knobs.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.knobs.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.knobs.warm_up_time = d;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            knobs: self.knobs.clone(),
            _parent: self,
            _measurement: std::marker::PhantomData,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let knobs = self.knobs.clone();
        run_one("", &id.into_id(), &knobs, f);
        self
    }

    pub fn final_summary(&self) {}
}

/// Measurement marker types; only wall-clock time exists here, but the
/// real crate's `BenchmarkGroup<WallTime>` signatures must still name it.
pub mod measurement {
    pub struct WallTime;
}

/// A named group of benches sharing tuning knobs.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    knobs: Knobs,
    _parent: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.knobs.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.knobs.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.knobs.warm_up_time = d;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        run_one(&self.name, &id.into_id(), &self.knobs, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        run_one(&self.name, &id.into_id(), &self.knobs, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, knobs: &Knobs, mut f: impl FnMut(&mut Bencher<'_>)) {
    let label = if group.is_empty() { id.to_owned() } else { format!("{group}/{id}") };
    let mut result = None;
    let mut bencher = Bencher {
        samples: knobs.sample_size,
        measurement_time: knobs.measurement_time,
        warm_up_time: knobs.warm_up_time,
        result: &mut result,
    };
    f(&mut bencher);
    match result {
        Some((ns, samples)) => {
            println!("bench {label} ... {ns:.0} ns/iter ({samples} samples)");
        }
        None => println!("bench {label} ... no measurement (closure never called iter)"),
    }
}

/// Define a bench group. Supports both forms the real crate accepts.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
