//! Offline shim for the `bytes` crate: the `Buf`/`BufMut` trait subset
//! orion's codecs use, with the same big-endian integer conventions as
//! the real crate, implemented for `&[u8]` and `Vec<u8>`.

/// Sequential reader over a byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_i16(&mut self) -> i16 {
        self.get_u16() as i16
    }

    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

/// Sequential writer into a growable byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i16(&mut self, v: i16) {
        self.put_u16(v as u16);
    }

    fn put_i32(&mut self, v: i32) {
        self.put_u32(v as u32);
    }

    fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_u64_le(v as u64);
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16(0xBEEF);
        out.put_u64(u64::MAX - 3);
        out.put_slice(b"xyz");
        let mut r: &[u8] = &out;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u64(), u64::MAX - 3);
        assert_eq!(r.chunk(), b"xyz");
        r.advance(3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn big_endian_layout() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u16(0x0102);
        assert_eq!(out, vec![1, 2]);
    }
}
