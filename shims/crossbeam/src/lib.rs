//! Offline shim for the `crossbeam` crate: just `crossbeam::scope`,
//! implemented over `std::thread::scope` (which did not exist when the
//! real crate introduced scoped threads).
//!
//! Differences from the real API are limited to what orion never uses:
//! the argument passed to spawned closures is a placeholder that does
//! not support nested spawning (every caller in this workspace writes
//! `scope.spawn(|_| …)`).

/// Re-export under the real crate's module path as well.
pub mod thread {
    pub use super::{scope, Scope, SpawnPlaceholder};
}

/// The value handed to spawned closures (nested spawning unsupported).
pub struct SpawnPlaceholder(());

/// Scope handle: spawn threads that may borrow from the caller's stack.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure's argument mirrors crossbeam's
    /// nested-scope handle and is a placeholder here.
    pub fn spawn<T, F>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&SpawnPlaceholder) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(&SpawnPlaceholder(())))
    }
}

/// Create a scope for spawning borrowing threads. Like crossbeam, child
/// panics surface as `Err` rather than unwinding through the caller.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        super::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn child_panic_is_an_err() {
        let r = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
