//! Offline shim for the `rand` crate.
//!
//! Implements the subset orion's fixtures and tests use — `Rng` with
//! `gen_range`/`gen_bool`/`gen`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and `seq::SliceRandom` — over a xoshiro256**
//! generator seeded via splitmix64. Streams are deterministic for a
//! given seed but are NOT the same streams as the real rand crate.

use std::ops::Range;

/// Sample a uniform value from a range (the shim's stand-in for rand's
/// `SampleUniform` machinery).
pub trait Uniformable: Copy {
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

/// Object-safe random source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Draw a `u64` below `bound` without modulo bias (Lemire's method
/// simplified to rejection sampling on the top bits).
fn bounded(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_uniformable_int {
    ($($t:ty),*) => {$(
        impl Uniformable for $t {
            fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u64;
                let v = bounded(rng, span);
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniformable_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Uniformable for f64 {
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// Types producible by `Rng::gen` (`Standard` distribution stand-in).
pub trait Generable {
    fn generate(rng: &mut dyn RngCore) -> Self;
}

impl Generable for u64 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Generable for u32 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as u32
    }
}

impl Generable for bool {
    fn generate(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Generable for f64 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The user-facing random-value API.
pub trait Rng: RngCore {
    fn gen_range<T: Uniformable>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::generate(self) < p
    }

    #[allow(clippy::should_implement_trait)] // matches the real rand API
    fn gen<T: Generable>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (`shuffle`, `choose`).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&v));
        }
        let mut ones = 0;
        for _ in 0..1000 {
            if rng.gen_bool(0.5) {
                ones += 1;
            }
        }
        assert!((300..700).contains(&ones), "suspicious bias: {ones}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
