//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: at each of `depth` levels, generation
    /// chooses between this (leaf) strategy and `branch(inner)`, where
    /// `inner` generates the next level down. `_desired_size` and
    /// `_expected_branch` are accepted for API compatibility; recursion
    /// here is bounded structurally by `depth` alone.
    fn prop_recursive<F, B>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> B,
        B: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(current).boxed();
            // Lean toward leaves (2:1) so sizes stay reasonable.
            current = Union::weighted(vec![(2, leaf.clone()), (1, deeper)]).boxed();
        }
        current
    }

    /// Type-erase this strategy. The result is cheaply cloneable.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { choices: self.choices.clone(), total: self.total }
    }
}

impl<T> Union<T> {
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(choices.into_iter().map(|c| (1, c)).collect())
    }

    pub fn weighted(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        let total = choices.iter().map(|(w, _)| *w).sum();
        Union { choices, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (weight, choice) in &self.choices {
            if pick < *weight {
                return choice.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total")
    }
}

// ---------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------

/// Integers (and floats) usable as range strategies.
pub trait RangedValue: Copy {
    fn sample_range(rng: &mut TestRng, lo: Self, hi_exclusive: Self) -> Self;
}

macro_rules! impl_ranged_int {
    ($($t:ty),*) => {$(
        impl RangedValue for $t {
            fn sample_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_ranged_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangedValue for f64 {
    fn sample_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl<T: RangedValue> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

// ---------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

// String patterns live in crate::string; `&str` gets its Strategy impl
// there.
