//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::Range;

/// Acceptable length specifications.
pub trait IntoSizeRange {
    fn bounds(&self) -> (usize, usize); // inclusive lo, exclusive hi
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

/// Vectors of values from `element`, length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (lo, hi) = size.bounds();
    assert!(lo < hi, "empty vec size range");
    VecStrategy { element, lo, hi }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.usize_in(self.lo, self.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>`; duplicate keys collapse, so the map
/// may come out smaller than the drawn size (matches the real crate).
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    lo: usize,
    hi: usize,
}

/// Maps with entries from `key`/`value`, size drawn from `size`.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl IntoSizeRange,
) -> BTreeMapStrategy<K, V> {
    let (lo, hi) = size.bounds();
    assert!(lo < hi, "empty btree_map size range");
    BTreeMapStrategy { key, value, lo, hi }
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.usize_in(self.lo, self.hi);
        (0..len).map(|_| (self.key.generate(rng), self.value.generate(rng))).collect()
    }
}
