//! `option::of` — optional values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `None` a quarter of the time (the real crate's
/// default `prob` for `option::of`), otherwise `Some` of the inner.
pub struct OptionStrategy<S> {
    inner: S,
}

/// `Option<T>` values from an inner strategy.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
