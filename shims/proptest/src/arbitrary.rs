//! `any::<T>()` — default strategies per type, biased toward edge cases
//! the way the real crate's `Arbitrary` impls are.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // One case in eight is an edge value; otherwise uniform
                // random bits truncated to width.
                if rng.below(8) == 0 {
                    match rng.below(4) {
                        0 => 0 as $t,
                        1 => 1 as $t,
                        2 => <$t>::MAX,
                        _ => <$t>::MIN,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix of specials (NaN, infinities, zeros) and raw bit patterns;
        // bit patterns exercise the full exponent range.
        match rng.below(8) {
            0 => match rng.below(5) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                _ => -0.0,
            },
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly printable ASCII with a sprinkle of wider code points.
        if rng.below(8) == 0 {
            char::from_u32(rng.below(0x1_0000) as u32).unwrap_or('\u{fffd}')
        } else {
            (0x20 + rng.below(0x5f) as u8) as char
        }
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}
