//! String strategies from pattern literals.
//!
//! The real crate compiles any regex; this shim supports the shapes
//! orion's tests use — a single character class with a bounded repeat,
//! e.g. `"[a-zA-Z0-9 ]{0,16}"` — and treats anything else as a literal
//! string.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Parsed form of a supported pattern.
enum Pattern {
    /// `[class]{lo,hi}` — characters drawn from `chars`, length in
    /// `lo..=hi`.
    ClassRepeat { chars: Vec<char>, lo: usize, hi: usize },
    /// Anything else, emitted verbatim.
    Literal(String),
}

fn parse_class(body: &str) -> Option<Vec<char>> {
    let mut out = Vec::new();
    let chars: Vec<char> = body.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

fn parse_pattern(pattern: &str) -> Pattern {
    // Recognize: '[' class ']' '{' lo ',' hi '}'
    let parsed = (|| {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let rest = rest.strip_prefix('{')?;
        let body = rest.strip_suffix('}')?;
        let (lo, hi) = match body.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n: usize = body.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some(Pattern::ClassRepeat { chars: parse_class(class)?, lo, hi })
    })();
    parsed.unwrap_or_else(|| Pattern::Literal(pattern.to_owned()))
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_pattern(self) {
            Pattern::ClassRepeat { chars, lo, hi } => {
                let len = rng.usize_in(lo, hi + 1);
                (0..len).map(|_| chars[rng.usize_in(0, chars.len())]).collect()
            }
            Pattern::Literal(s) => s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_repeat_respects_alphabet_and_length() {
        let mut rng = TestRng::for_case("class_repeat", 0);
        for _ in 0..200 {
            let s = "[a-zA-Z0-9 ]{0,16}".generate(&mut rng);
            assert!(s.chars().count() <= 16);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
    }

    #[test]
    fn unknown_pattern_is_literal() {
        let mut rng = TestRng::for_case("literal", 0);
        assert_eq!("hello".generate(&mut rng), "hello");
    }
}
