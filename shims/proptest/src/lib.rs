//! Offline shim for the `proptest` crate.
//!
//! Implements the API subset orion's property tests use: `Strategy`
//! (`prop_map`, `prop_recursive`, `boxed`), `Just`, `any::<T>()`,
//! integer ranges, char-class string patterns, tuples,
//! `collection::{vec, btree_map}`, `option::of`, `prop_oneof!`, the
//! `proptest!` test macro with `ProptestConfig`, and the `prop_assert*`
//! macros.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test RNG and failing inputs are *not shrunk* —
//! the failing case's `Debug` rendering is printed instead. That trades
//! minimal counterexamples for zero dependencies.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Define property tests. Each function runs `config.cases` random
/// cases; a failing case panics with its `Debug`-rendered inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            let mut ran: u32 = 0;
            while ran < config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                case += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                // Rendered eagerly: the body may move the inputs.
                let rendered = {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&format!(
                        "\n  {} = {:?}", stringify!($arg), $arg,
                    ));)+
                    s
                };
                let outcome: $crate::test_runner::TestCaseResult = (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases * 16 + 256,
                            "proptest {}: too many rejected cases", stringify!($name),
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {} (no shrinking): {}\ninputs:{}",
                            stringify!($name), case - 1, msg, rendered,
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}
