//! Case configuration, the deterministic test RNG, and case outcomes.

/// How many cases a `proptest!` function runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The case was discarded (`prop_assume`).
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic xoshiro256** RNG; every case gets a stream derived
/// from the test's name and case index, so failures reproduce exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// The RNG for `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut seed = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            s: [
                splitmix64(&mut seed),
                splitmix64(&mut seed),
                splitmix64(&mut seed),
                splitmix64(&mut seed),
            ],
        }
    }

    /// 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw below `bound` (> 0), bias-free.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
